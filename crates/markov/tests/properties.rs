//! Property-based tests for the Vaidya model and schedules.

use chs_dist::{Exponential, HyperExponential, Weibull};
use chs_markov::{CheckpointCosts, Schedule, VaidyaModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transition probabilities are proper and costs bounded for every
    /// (T, age, C) combination across all three families.
    #[test]
    fn quantities_are_proper(
        shape in 0.3f64..3.0,
        scale in 100.0f64..50_000.0,
        c in 0.0f64..2_000.0,
        t in 1.0f64..100_000.0,
        age in 0.0f64..200_000.0,
    ) {
        let d = Weibull::new(shape, scale).unwrap();
        let m = VaidyaModel::new(&d, CheckpointCosts::symmetric(c)).unwrap();
        let q = m.quantities(t, age);
        prop_assert!((0.0..=1.0).contains(&q.p01));
        prop_assert!((0.0..=1.0).contains(&q.p02));
        prop_assert!((q.p01 + q.p02 - 1.0).abs() < 1e-9);
        prop_assert!((q.p21 + q.p22 - 1.0).abs() < 1e-9);
        prop_assert!(q.k02 >= 0.0 && q.k02 <= q.k01 + 1e-9);
        prop_assert!(q.k22 >= 0.0 && q.k22 <= q.k21 + 1e-9);
    }

    /// Γ(T) ≥ T always (you cannot finish an interval faster than the
    /// work it contains), so efficiency ≤ 1.
    #[test]
    fn gamma_dominates_work(
        mean in 100.0f64..100_000.0,
        c in 0.0f64..1_000.0,
        t in 1.0f64..50_000.0,
    ) {
        let d = Exponential::from_mean(mean).unwrap();
        let m = VaidyaModel::new(&d, CheckpointCosts::symmetric(c)).unwrap();
        let g = m.gamma(t, 0.0);
        prop_assert!(g >= t || g.is_infinite());
        prop_assert!(m.efficiency(t, 0.0) <= 1.0 + 1e-12);
    }

    /// T_opt is a genuine local minimum of the overhead ratio.
    #[test]
    fn t_opt_local_optimality(
        shape in 0.35f64..2.0,
        c in 20.0f64..1_500.0,
        age in 0.0f64..100_000.0,
    ) {
        let d = Weibull::new(shape, 3_409.0).unwrap();
        let m = VaidyaModel::new(&d, CheckpointCosts::symmetric(c)).unwrap();
        let opt = m.optimal_interval(age).unwrap();
        let here = m.overhead_ratio(opt.work_seconds, age);
        prop_assert!(m.overhead_ratio(opt.work_seconds * 1.1, age) >= here - 1e-7);
        prop_assert!(m.overhead_ratio(opt.work_seconds * 0.9, age) >= here - 1e-7);
        prop_assert!(opt.efficiency > 0.0 && opt.efficiency <= 1.0);
    }

    /// Memorylessness: exponential T_opt does not depend on age.
    #[test]
    fn exponential_age_invariance(
        mean in 200.0f64..50_000.0,
        c in 10.0f64..1_000.0,
        age in 0.0f64..500_000.0,
    ) {
        let d = Exponential::from_mean(mean).unwrap();
        let m = VaidyaModel::new(&d, CheckpointCosts::symmetric(c)).unwrap();
        let t0 = m.optimal_interval(0.0).unwrap().work_seconds;
        let ta = m.optimal_interval(age).unwrap().work_seconds;
        prop_assert!((t0 - ta).abs() < 0.02 * t0, "t0 {t0} vs ta {ta}");
    }

    /// Schedules are internally consistent: ages chain by work + C, and
    /// every planned interval is within the optimizer bounds.
    #[test]
    fn schedule_age_chain(
        shape in 0.35f64..1.5,
        c in 20.0f64..800.0,
        initial_age in 0.0f64..50_000.0,
    ) {
        let d = Weibull::new(shape, 3_409.0).unwrap();
        let m = VaidyaModel::new(&d, CheckpointCosts::symmetric(c)).unwrap();
        let s = Schedule::compute(&m, initial_age, 200_000.0, 24).unwrap();
        let entries = s.entries();
        prop_assert!(!entries.is_empty());
        for w in entries.windows(2) {
            let expected = w[0].start_age + w[0].interval.work_seconds + c;
            prop_assert!((w[1].start_age - expected).abs() < 1e-6);
        }
        for e in entries {
            prop_assert!(e.interval.work_seconds >= 1.0 - 1e-9);
        }
    }

    /// More reliable machines (larger scale, same shape) get longer
    /// optimal intervals.
    #[test]
    fn reliability_monotonicity(scale1 in 500.0f64..5_000.0, ratio in 1.5f64..10.0) {
        let c = 110.0;
        let d1 = Weibull::new(0.7, scale1).unwrap();
        let d2 = Weibull::new(0.7, scale1 * ratio).unwrap();
        let m1 = VaidyaModel::new(&d1, CheckpointCosts::symmetric(c)).unwrap();
        let m2 = VaidyaModel::new(&d2, CheckpointCosts::symmetric(c)).unwrap();
        let t1 = m1.optimal_interval(0.0).unwrap().work_seconds;
        let t2 = m2.optimal_interval(0.0).unwrap().work_seconds;
        prop_assert!(t2 > t1, "scale {} -> T {t1}; scale {} -> T {t2}",
            scale1, scale1 * ratio);
    }

    /// The hyperexponential conditional machinery keeps the optimizer
    /// finite and positive everywhere.
    #[test]
    fn hyperexp_optimizer_total(
        p in 0.1f64..0.9,
        fast_mean in 60.0f64..1_000.0,
        slow_factor in 5.0f64..200.0,
        c in 20.0f64..1_000.0,
        age in 0.0f64..100_000.0,
    ) {
        let d = HyperExponential::new(&[
            (p, 1.0 / fast_mean),
            (1.0 - p, 1.0 / (fast_mean * slow_factor)),
        ]).unwrap();
        let m = VaidyaModel::new(&d, CheckpointCosts::symmetric(c)).unwrap();
        let opt = m.optimal_interval(age).unwrap();
        prop_assert!(opt.work_seconds.is_finite() && opt.work_seconds > 0.0);
        prop_assert!(opt.efficiency > 0.0 && opt.efficiency <= 1.0);
    }
}
