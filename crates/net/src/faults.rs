//! Deterministic, seed-driven fault injection for checkpoint transfers.
//!
//! The emulation's transfers are otherwise perfect — they only ever end
//! by eviction — so every resilience claim needs a fault source that is
//! (a) *deterministic*: the same [`FaultPlan`] seed reproduces the same
//! faults bit-for-bit regardless of thread count or evaluation order,
//! and (b) *non-invasive*: a zero-probability plan must leave the
//! driver's RNG streams untouched so the fault-aware pipeline reproduces
//! the classic one bitwise (the repo's standing differential-gate
//! convention).
//!
//! Both properties come from per-decision seeding: each fault decision
//! hashes `(plan seed, lane, index)` through a splitmix-style mixer into
//! its own private [`ChaCha8Rng`], so decision *k* of lane *l* is a pure
//! function of the plan — drivers can consult decisions in any order, in
//! parallel, or not at all, without perturbing anything else.
//!
//! The vocabulary matches the cycle layer's `TransferFaultKind`
//! (stall / drop / corruption / unavailability) plus fit-failure
//! injection for the model-fitting pipeline; [`RetryPolicy`] carries the
//! manager-side resilience knobs (bounded retries, exponential backoff
//! with jitter, forecast-derived timeouts).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// Parse one JSONL record per line, validate each, and point errors at
/// their line — the `ProcessLog::read_jsonl` convention shared by every
/// durable format in the repo.
fn read_validated_jsonl<R, T>(
    r: R,
    validate: impl Fn(&T) -> Result<(), String>,
) -> std::io::Result<Vec<T>>
where
    R: BufRead,
    T: Deserialize,
{
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|err| {
            std::io::Error::new(err.kind(), format!("line {}: {err}", lineno + 1))
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let invalid = |msg: String| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {msg}", lineno + 1),
            )
        };
        let record: T = serde_json::from_str(&line).map_err(|e| invalid(e.to_string()))?;
        validate(&record).map_err(invalid)?;
        out.push(record);
    }
    Ok(out)
}

/// Domain-separation salts for the independent decision families.
const SALT_TRANSFER: u64 = 0x7472_616E_7366_6572; // "transfer"
const SALT_FIT: u64 = 0x6669_745F_6661_696C; // "fit_fail"

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for one fault decision: order-independent in how drivers
/// interleave lanes, collision-resistant across (lane, index) pairs.
fn decision_seed(seed: u64, lane: u64, index: u64, salt: u64) -> u64 {
    mix(seed ^ mix(lane.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ mix(index ^ salt)))
}

/// One injected fault on a transfer attempt, fully parameterized.
///
/// The fraction/wait parameters are sampled from the decision's private
/// RNG, so two faults of the same kind on different attempts differ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransferFault {
    /// The transfer stops making progress after delivering
    /// `progress_fraction` of the payload; only the manager's timeout
    /// ends the attempt. The delivered prefix survives (resumable).
    Stall {
        /// Fraction of the payload delivered before progress stops.
        progress_fraction: f64,
    },
    /// The connection dies after delivering `progress_fraction` of the
    /// payload. The delivered prefix survives (resumable).
    Drop {
        /// Fraction of the payload delivered before the connection dies.
        progress_fraction: f64,
    },
    /// The transfer completes but its checksum fails at commit: the
    /// whole image is wasted and must be re-sent from scratch.
    Corruption,
    /// The checkpoint manager is unreachable for `wait_seconds` before
    /// the attempt can start; no payload moves while waiting.
    Unavailable {
        /// Seconds the attempt is delayed before it can start.
        wait_seconds: f64,
    },
}

/// Manager-side resilience knobs: bounded retries with exponential
/// backoff + jitter, and the per-transfer timeout multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retry attempts after the first before a checkpoint is abandoned
    /// (recovery transfers retry until eviction regardless — there is
    /// no older image to fall back to).
    pub max_retries: u32,
    /// Backoff before retry 1, seconds.
    pub backoff_base: f64,
    /// Multiplier applied per additional retry (≥ 1).
    pub backoff_factor: f64,
    /// Jitter half-width as a fraction of the deterministic backoff:
    /// the waited time is `backoff · (1 + jitter·u)`, `u ∈ [−1, 1)`
    /// drawn from the *run* RNG stream (only on faulted attempts, so
    /// zero-fault runs draw nothing extra).
    pub backoff_jitter: f64,
    /// A transfer attempt times out after `timeout_factor ×` the
    /// forecasted duration. Only injected stalls can hit the timeout:
    /// healthy sampled transfers always run to completion, preserving
    /// bitwise identity with the classic pipeline.
    pub timeout_factor: f64,
    /// Ceiling on the deterministic backoff, seconds. The exponential
    /// schedule saturates here instead of growing without bound (or
    /// overflowing to non-finite for absurd attempt counts).
    pub max_backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base: 5.0,
            backoff_factor: 2.0,
            backoff_jitter: 0.25,
            timeout_factor: 3.0,
            max_backoff: 3_600.0,
        }
    }
}

impl RetryPolicy {
    /// Check the knob ranges; returns a human-readable reason on error.
    pub fn validate(&self) -> Result<(), String> {
        if !self.backoff_base.is_finite() || self.backoff_base < 0.0 {
            return Err(format!(
                "backoff_base must be finite ≥ 0: {}",
                self.backoff_base
            ));
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(format!(
                "backoff_factor must be finite ≥ 1: {}",
                self.backoff_factor
            ));
        }
        if !self.backoff_jitter.is_finite() || !(0.0..=1.0).contains(&self.backoff_jitter) {
            return Err(format!(
                "backoff_jitter must be in [0, 1]: {}",
                self.backoff_jitter
            ));
        }
        if !self.timeout_factor.is_finite() || self.timeout_factor <= 1.0 {
            return Err(format!(
                "timeout_factor must be finite > 1: {}",
                self.timeout_factor
            ));
        }
        if !self.max_backoff.is_finite() || self.max_backoff < 0.0 {
            return Err(format!(
                "max_backoff must be finite ≥ 0: {}",
                self.max_backoff
            ));
        }
        Ok(())
    }

    /// Deterministic part of the backoff before retry `attempt` (1-based),
    /// saturating at [`max_backoff`](Self::max_backoff). The exponent is
    /// clamped *before* `powi` so huge attempt counts (up to `u32::MAX`,
    /// which would wrap when cast to `i32`) cannot overflow to a
    /// non-finite — or, worse, tiny — backoff.
    pub fn backoff(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(4_096) as i32;
        let raw = self.backoff_base * self.backoff_factor.powi(exp);
        if raw.is_finite() {
            raw.min(self.max_backoff)
        } else {
            self.max_backoff
        }
    }

    /// Backoff with jitter applied; `u` must be a uniform draw in [0, 1)
    /// from the run's RNG stream.
    pub fn backoff_jittered(&self, attempt: u32, u: f64) -> f64 {
        self.backoff(attempt) * (1.0 + self.backoff_jitter * (2.0 * u - 1.0))
    }

    /// Read a JSONL stream of policies, validating each; errors point at
    /// the offending line.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Vec<Self>> {
        read_validated_jsonl(r, Self::validate)
    }
}

/// A seeded, serializable description of every fault a run will see.
///
/// Probabilities are per *decision site*: each transfer attempt draws at
/// most one fault, each (machine, model) fit draws one failure decision.
/// [`FaultPlan::none`] injects nothing and — by contract, enforced by
/// the `fault_bench` identity gate — reproduces the classic pipeline
/// bitwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed for every per-decision RNG.
    pub seed: u64,
    /// P(transfer attempt stalls).
    pub p_stall: f64,
    /// P(transfer attempt drops mid-flight).
    pub p_drop: f64,
    /// P(transfer completes but is corrupt at commit).
    pub p_corrupt: f64,
    /// P(manager transiently unavailable before the attempt).
    pub p_unavailable: f64,
    /// P(a model fit is forced to fail in `prepare_experiments`).
    pub p_fit_failure: f64,
    /// Upper bound on the payload fraction delivered before a stall
    /// (the actual fraction is uniform in [0, `stall_fraction`)).
    pub stall_fraction: f64,
    /// Upper bound on the payload fraction delivered before a drop.
    pub drop_fraction: f64,
    /// Mean unavailability wait, seconds (actual is uniform in
    /// [0, 2·mean)).
    pub unavailable_wait: f64,
}

impl FaultPlan {
    /// The zero plan: no faults, and the guarantee that fault-aware
    /// drivers reproduce the classic pipeline bitwise.
    pub fn none() -> Self {
        Self {
            seed: 0,
            p_stall: 0.0,
            p_drop: 0.0,
            p_corrupt: 0.0,
            p_unavailable: 0.0,
            p_fit_failure: 0.0,
            stall_fraction: 0.6,
            drop_fraction: 0.8,
            unavailable_wait: 30.0,
        }
    }

    /// An even mix at total per-attempt fault probability `intensity`
    /// (split equally across the four transfer kinds) with fit-failure
    /// probability `intensity` as well.
    pub fn uniform(intensity: f64, seed: u64) -> Self {
        let p = intensity / 4.0;
        Self {
            seed,
            p_stall: p,
            p_drop: p,
            p_corrupt: p,
            p_unavailable: p,
            p_fit_failure: intensity,
            ..Self::none()
        }
    }

    /// True when no decision can ever inject a fault — drivers use this
    /// to skip fault bookkeeping entirely on the hot path.
    pub fn is_zero(&self) -> bool {
        self.p_stall == 0.0
            && self.p_drop == 0.0
            && self.p_corrupt == 0.0
            && self.p_unavailable == 0.0
            && self.p_fit_failure == 0.0
    }

    /// Check probability and parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("p_stall", self.p_stall),
            ("p_drop", self.p_drop),
            ("p_corrupt", self.p_corrupt),
            ("p_unavailable", self.p_unavailable),
            ("p_fit_failure", self.p_fit_failure),
        ];
        for (name, p) in probs {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1]: {p}"));
            }
        }
        let total = self.p_stall + self.p_drop + self.p_corrupt + self.p_unavailable;
        if total > 1.0 {
            return Err(format!("transfer fault probabilities sum to {total} > 1"));
        }
        for (name, f) in [
            ("stall_fraction", self.stall_fraction),
            ("drop_fraction", self.drop_fraction),
        ] {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(format!("{name} must be in [0, 1]: {f}"));
            }
        }
        if !self.unavailable_wait.is_finite() || self.unavailable_wait < 0.0 {
            return Err(format!(
                "unavailable_wait must be finite ≥ 0: {}",
                self.unavailable_wait
            ));
        }
        Ok(())
    }

    /// The fault (if any) injected on transfer attempt `index` of
    /// decision lane `lane`. A lane is one independent attempt counter —
    /// the live runner uses one per (stream, model) pair, the contention
    /// runner one per job — so decisions never depend on scheduling
    /// order across lanes.
    pub fn transfer_fault(&self, lane: u64, index: u64) -> Option<TransferFault> {
        let total = self.p_stall + self.p_drop + self.p_corrupt + self.p_unavailable;
        if total == 0.0 {
            return None;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(decision_seed(self.seed, lane, index, SALT_TRANSFER));
        let u: f64 = rng.gen();
        let mut edge = self.p_stall;
        if u < edge {
            return Some(TransferFault::Stall {
                progress_fraction: rng.gen::<f64>() * self.stall_fraction,
            });
        }
        edge += self.p_drop;
        if u < edge {
            return Some(TransferFault::Drop {
                progress_fraction: rng.gen::<f64>() * self.drop_fraction,
            });
        }
        edge += self.p_corrupt;
        if u < edge {
            return Some(TransferFault::Corruption);
        }
        edge += self.p_unavailable;
        if u < edge {
            return Some(TransferFault::Unavailable {
                wait_seconds: rng.gen::<f64>() * 2.0 * self.unavailable_wait,
            });
        }
        None
    }

    /// Whether the fit of model family `model` on machine `machine` is
    /// forced to fail (exercising the degradation chain downstream).
    pub fn fit_failure(&self, machine: u64, model: u64) -> bool {
        if self.p_fit_failure == 0.0 {
            return false;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(decision_seed(self.seed, machine, model, SALT_FIT));
        rng.gen::<f64>() < self.p_fit_failure
    }

    /// Read a JSONL stream of plans, validating each; errors point at
    /// the offending line.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Vec<Self>> {
        read_validated_jsonl(r, Self::validate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        for lane in 0..8 {
            for index in 0..64 {
                assert_eq!(plan.transfer_fault(lane, index), None);
                assert!(!plan.fit_failure(lane, index));
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let plan = FaultPlan::uniform(0.5, 42);
        let forward: Vec<_> = (0..200).map(|i| plan.transfer_fault(3, i)).collect();
        let backward: Vec<_> = (0..200).rev().map(|i| plan.transfer_fault(3, i)).collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        // And a rebuilt plan with the same seed agrees.
        let again = FaultPlan::uniform(0.5, 42);
        let replay: Vec<_> = (0..200).map(|i| again.transfer_fault(3, i)).collect();
        assert_eq!(forward, replay);
    }

    #[test]
    fn lanes_are_independent() {
        let plan = FaultPlan::uniform(0.5, 7);
        let a: Vec<_> = (0..100).map(|i| plan.transfer_fault(1, i)).collect();
        let b: Vec<_> = (0..100).map(|i| plan.transfer_fault(2, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_intensity_sets_observed_frequency() {
        let plan = FaultPlan::uniform(0.4, 11);
        let n = 4_000;
        let faults = (0..n)
            .filter(|&i| plan.transfer_fault(0, i).is_some())
            .count();
        let rate = faults as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.05, "observed fault rate {rate}");
    }

    #[test]
    fn fault_parameters_in_range() {
        let plan = FaultPlan::uniform(0.9, 13);
        for i in 0..500 {
            match plan.transfer_fault(0, i) {
                Some(TransferFault::Stall { progress_fraction }) => {
                    assert!((0.0..plan.stall_fraction).contains(&progress_fraction));
                }
                Some(TransferFault::Drop { progress_fraction }) => {
                    assert!((0.0..plan.drop_fraction).contains(&progress_fraction));
                }
                Some(TransferFault::Unavailable { wait_seconds }) => {
                    assert!((0.0..2.0 * plan.unavailable_wait).contains(&wait_seconds));
                }
                Some(TransferFault::Corruption) | None => {}
            }
        }
    }

    #[test]
    fn fit_failure_rate_matches() {
        let plan = FaultPlan::uniform(0.3, 5);
        let n = 4_000u64;
        let fails = (0..n).filter(|&m| plan.fit_failure(m, 2)).count();
        let rate = fails as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "observed fit-failure rate {rate}"
        );
    }

    #[test]
    fn plan_serde_round_trip() {
        let plan = FaultPlan::uniform(0.25, 99);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut plan = FaultPlan::none();
        plan.p_drop = 1.5;
        assert!(plan.validate().is_err());
        plan.p_drop = f64::NAN;
        assert!(plan.validate().is_err());
        plan.p_drop = 0.0;
        plan.unavailable_wait = -1.0;
        assert!(plan.validate().is_err());
        // Sum over 1 rejected even when each is individually legal.
        let mut plan = FaultPlan::none();
        plan.p_stall = 0.6;
        plan.p_drop = 0.6;
        assert!(plan.validate().is_err());
        assert!(FaultPlan::uniform(1.0, 0).validate().is_ok());
    }

    #[test]
    fn retry_policy_backoff_schedule() {
        let p = RetryPolicy::default();
        assert!(p.validate().is_ok());
        assert_eq!(p.backoff(1), 5.0);
        assert_eq!(p.backoff(2), 10.0);
        assert_eq!(p.backoff(3), 20.0);
        // Jitter bounds: u ∈ [0, 1) keeps the wait within ±jitter.
        let lo = p.backoff_jittered(2, 0.0);
        let hi = p.backoff_jittered(2, 1.0 - f64::EPSILON);
        assert!((lo - 7.5).abs() < 1e-12);
        assert!(hi < 12.5 + 1e-9);
        // Zero jitter is exactly deterministic.
        let mut nz = p;
        nz.backoff_jitter = 0.0;
        assert_eq!(nz.backoff_jittered(3, 0.77), 20.0);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let p = RetryPolicy::default();
        // The cast `(u32::MAX − 1) as i32` used to wrap negative and
        // produce a near-zero backoff; the clamp must saturate instead.
        for attempt in [64, 1_000, 4_097, u32::MAX - 1, u32::MAX] {
            let b = p.backoff(attempt);
            assert!(b.is_finite(), "attempt {attempt}: backoff {b}");
            assert_eq!(b, p.max_backoff, "attempt {attempt}");
            let j = p.backoff_jittered(attempt, 0.999);
            assert!(j.is_finite() && j > 0.0, "attempt {attempt}: jittered {j}");
        }
        // The cap also binds for merely-large finite schedules.
        assert_eq!(p.backoff(12), 3_600.0); // 5·2^11 = 10_240 uncapped
        assert_eq!(p.backoff(11), 3_600.0); // 5·2^10 = 5_120 uncapped
        assert_eq!(p.backoff(10), 2_560.0); // below the cap: exact
                                            // A factor-1 schedule is flat and unaffected by the clamp.
        let flat = RetryPolicy {
            backoff_factor: 1.0,
            ..RetryPolicy::default()
        };
        assert_eq!(flat.backoff(u32::MAX), 5.0);
    }

    #[test]
    fn retry_policy_serde_round_trip() {
        let p = RetryPolicy {
            max_retries: 7,
            backoff_base: 2.5,
            backoff_factor: 3.0,
            backoff_jitter: 0.1,
            timeout_factor: 4.0,
            max_backoff: 900.0,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn jsonl_loaders_round_trip_and_point_at_bad_lines() {
        // FaultPlan: two good lines round-trip.
        let plans = [FaultPlan::uniform(0.2, 1), FaultPlan::none()];
        let mut buf = Vec::new();
        for p in &plans {
            buf.extend_from_slice(serde_json::to_string(p).unwrap().as_bytes());
            buf.push(b'\n');
        }
        let back = FaultPlan::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, plans);
        // An out-of-range probability on line 3 fails *validation* (not
        // parsing) and the error names the line and the field.
        buf.extend_from_slice(
            br#"{"seed":0,"p_stall":2.0,"p_drop":0.0,"p_corrupt":0.0,"p_unavailable":0.0,"p_fit_failure":0.0,"stall_fraction":0.6,"drop_fraction":0.8,"unavailable_wait":30.0}
"#,
        );
        let err = FaultPlan::read_jsonl(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("p_stall"), "{msg}");
        // Syntactically corrupt JSON also points at its line.
        let text = "{\"seed\":0 not json\n";
        let err = FaultPlan::read_jsonl(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");

        // RetryPolicy: good line + out-of-range knob on line 2.
        let good = serde_json::to_string(&RetryPolicy::default()).unwrap();
        let bad_policy = r#"{"max_retries":3,"backoff_base":5.0,"backoff_factor":0.5,"backoff_jitter":0.25,"timeout_factor":3.0,"max_backoff":3600.0}"#;
        let text = format!("{good}\n{bad_policy}\n");
        let err = RetryPolicy::read_jsonl(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("line 2") && msg.contains("backoff_factor"),
            "{msg}"
        );
        let ok = RetryPolicy::read_jsonl(format!("{good}\n\n{good}\n").as_bytes()).unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn retry_policy_validate_rejects_bad_knobs() {
        let bad = [
            RetryPolicy {
                backoff_factor: 0.5,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                timeout_factor: 1.0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                backoff_jitter: 2.0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                backoff_base: f64::INFINITY,
                ..RetryPolicy::default()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err());
        }
    }
}
