//! Time-series forecasters for checkpoint transfer durations.
//!
//! Modeled on the Network Weather Service's forecaster battery: several
//! cheap predictors run in parallel over the same measurement stream, the
//! mean-squared-error of each is tracked, and the adaptive forecaster
//! answers with the prediction of whichever expert is currently most
//! accurate.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A transfer-duration measurement the forecasters will accept: finite
/// and non-negative. A single NaN fed to any expert would otherwise
/// poison every subsequent forecast (NaN sums never recover, and the
/// median's sort comparator panics), so all `update` implementations
/// silently skip invalid values; [`AdaptiveForecaster`] additionally
/// counts them via [`AdaptiveForecaster::rejected`].
pub fn valid_measurement(value: f64) -> bool {
    value.is_finite() && value >= 0.0
}

/// A streaming one-step-ahead forecaster.
pub trait Forecaster {
    /// Incorporate a new measurement. Non-finite or negative values are
    /// ignored (see [`valid_measurement`]).
    fn update(&mut self, value: f64);
    /// Predict the next value; `None` until enough data has arrived.
    fn predict(&self) -> Option<f64>;
    /// Short human-readable name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Predicts the most recent measurement.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LastValue {
    last: Option<f64>,
}

impl Forecaster for LastValue {
    fn update(&mut self, value: f64) {
        if !valid_measurement(value) {
            return;
        }
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Predicts the mean of everything seen so far.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl Forecaster for RunningMean {
    fn update(&mut self, value: f64) {
        if !valid_measurement(value) {
            return;
        }
        self.sum += value;
        self.count += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
    fn name(&self) -> &'static str {
        "running-mean"
    }
}

/// Predicts the mean of the last `window` measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingMean {
    window: usize,
    values: VecDeque<f64>,
    sum: f64,
}

impl SlidingMean {
    /// Create with the given window length (≥ 1).
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
            values: VecDeque::new(),
            sum: 0.0,
        }
    }
}

impl Forecaster for SlidingMean {
    fn update(&mut self, value: f64) {
        if !valid_measurement(value) {
            return;
        }
        self.values.push_back(value);
        self.sum += value;
        if self.values.len() > self.window {
            self.sum -= self.values.pop_front().expect("nonempty");
        }
    }
    fn predict(&self) -> Option<f64> {
        (!self.values.is_empty()).then(|| self.sum / self.values.len() as f64)
    }
    fn name(&self) -> &'static str {
        "sliding-mean"
    }
}

/// Predicts the median of the last `window` measurements — robust to the
/// occasional congested transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingMedian {
    window: usize,
    values: VecDeque<f64>,
}

impl SlidingMedian {
    /// Create with the given window length (≥ 1).
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(1),
            values: VecDeque::new(),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn update(&mut self, value: f64) {
        if !valid_measurement(value) {
            return;
        }
        self.values.push_back(value);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.values.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("measurements are finite"));
        let n = sorted.len();
        Some(if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        })
    }
    fn name(&self) -> &'static str {
        "sliding-median"
    }
}

/// Exponential smoothing: `ŷ ← g·y + (1 − g)·ŷ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpSmoothing {
    gain: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    /// Create with gain `g ∈ (0, 1]`.
    pub fn new(gain: f64) -> Self {
        Self {
            gain: gain.clamp(f64::MIN_POSITIVE, 1.0),
            state: None,
        }
    }
}

impl Forecaster for ExpSmoothing {
    fn update(&mut self, value: f64) {
        if !valid_measurement(value) {
            return;
        }
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.gain * value + (1.0 - self.gain) * s,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &'static str {
        "exp-smoothing"
    }
}

/// Which expert the adaptive forecaster currently trusts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertChoice {
    /// Index into the expert battery.
    pub index: usize,
    /// The expert's name.
    pub name: &'static str,
}

/// NWS-style adaptive forecaster: runs a battery of experts, scores each
/// by its mean squared one-step-ahead error, and predicts with the
/// current best.
pub struct AdaptiveForecaster {
    experts: Vec<Box<dyn Forecaster + Send>>,
    sq_errors: Vec<f64>,
    updates: Vec<u64>,
    rejected: u64,
}

impl AdaptiveForecaster {
    /// The default battery: last value, running mean, sliding mean and
    /// median (window 10), exponential smoothing at gains 0.1 / 0.3 / 0.6.
    pub fn standard() -> Self {
        Self::with_experts(vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(10)),
            Box::new(SlidingMedian::new(10)),
            Box::new(ExpSmoothing::new(0.1)),
            Box::new(ExpSmoothing::new(0.3)),
            Box::new(ExpSmoothing::new(0.6)),
        ])
    }

    /// Build from a custom expert battery.
    pub fn with_experts(experts: Vec<Box<dyn Forecaster + Send>>) -> Self {
        let n = experts.len();
        Self {
            experts,
            sq_errors: vec![0.0; n],
            updates: vec![0; n],
            rejected: 0,
        }
    }

    /// How many measurements were rejected as non-finite or negative
    /// (see [`valid_measurement`]).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Which expert currently has the lowest mean squared error.
    pub fn best_expert(&self) -> Option<ExpertChoice> {
        let mut best: Option<(usize, f64)> = None;
        for (i, (&se, &n)) in self.sq_errors.iter().zip(&self.updates).enumerate() {
            if n == 0 {
                continue;
            }
            let mse = se / n as f64;
            if best.is_none_or(|(_, b)| mse < b) {
                best = Some((i, mse));
            }
        }
        best.map(|(index, _)| ExpertChoice {
            index,
            name: self.experts[index].name(),
        })
    }
}

impl Forecaster for AdaptiveForecaster {
    fn update(&mut self, value: f64) {
        if !valid_measurement(value) {
            self.rejected += 1;
            return;
        }
        // Score each expert on its *prior* prediction before it sees the
        // new measurement.
        for (i, e) in self.experts.iter().enumerate() {
            if let Some(p) = e.predict() {
                let err = p - value;
                self.sq_errors[i] += err * err;
                self.updates[i] += 1;
            }
        }
        for e in self.experts.iter_mut() {
            e.update(value);
        }
    }

    fn predict(&self) -> Option<f64> {
        match self.best_expert() {
            Some(choice) => self.experts[choice.index].predict(),
            // No scored expert yet: fall back to any expert with data.
            None => self.experts.iter().find_map(|e| e.predict()),
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

impl std::fmt::Debug for AdaptiveForecaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveForecaster")
            .field("experts", &self.experts.len())
            .field("best", &self.best_expert())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks() {
        let mut f = LastValue::default();
        assert_eq!(f.predict(), None);
        f.update(5.0);
        f.update(9.0);
        assert_eq!(f.predict(), Some(9.0));
    }

    #[test]
    fn running_mean_averages() {
        let mut f = RunningMean::default();
        for v in [2.0, 4.0, 6.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(4.0));
    }

    #[test]
    fn sliding_mean_window() {
        let mut f = SlidingMean::new(2);
        for v in [1.0, 100.0, 2.0, 4.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(3.0)); // last two only
    }

    #[test]
    fn sliding_median_robust_to_outlier() {
        let mut f = SlidingMedian::new(5);
        for v in [100.0, 110.0, 105.0, 9_000.0, 108.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(108.0));
    }

    #[test]
    fn sliding_median_even_window() {
        let mut f = SlidingMedian::new(4);
        for v in [1.0, 2.0, 3.0, 4.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn exp_smoothing_converges_to_constant() {
        let mut f = ExpSmoothing::new(0.3);
        for _ in 0..200 {
            f.update(42.0);
        }
        assert!((f.predict().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn exp_smoothing_first_value_initializes() {
        let mut f = ExpSmoothing::new(0.1);
        f.update(7.0);
        assert_eq!(f.predict(), Some(7.0));
    }

    #[test]
    fn adaptive_prefers_mean_on_noisy_stationary() {
        // Alternating 100/120: last-value is always 20 off; means are ~10 off.
        let mut f = AdaptiveForecaster::standard();
        for i in 0..100 {
            f.update(if i % 2 == 0 { 100.0 } else { 120.0 });
        }
        let best = f.best_expert().unwrap();
        assert_ne!(
            best.name, "last-value",
            "adaptive should not pick last-value"
        );
        let p = f.predict().unwrap();
        assert!((p - 110.0).abs() < 8.0, "prediction {p}");
    }

    #[test]
    fn adaptive_tracks_level_shift() {
        // After a step change, the adaptive forecast moves to the new level.
        let mut f = AdaptiveForecaster::standard();
        for _ in 0..30 {
            f.update(110.0);
        }
        for _ in 0..60 {
            f.update(475.0);
        }
        let p = f.predict().unwrap();
        assert!(p > 300.0, "forecast stuck at old level: {p}");
    }

    #[test]
    fn adaptive_predicts_before_scoring() {
        let mut f = AdaptiveForecaster::standard();
        assert_eq!(f.predict(), None);
        f.update(110.0);
        // One observation: experts have data but no scored errors yet.
        assert_eq!(f.predict(), Some(110.0));
    }

    #[test]
    fn invalid_measurements_rejected_not_propagated() {
        // Regression: a single NaN used to poison every subsequent
        // forecast (NaN sums never recover; the median comparator
        // panicked outright).
        let mut f = AdaptiveForecaster::standard();
        for _ in 0..10 {
            f.update(110.0);
        }
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -5.0] {
            f.update(bad);
        }
        assert_eq!(f.rejected(), 4);
        f.update(110.0);
        let p = f.predict().unwrap();
        assert!(p.is_finite(), "forecast poisoned: {p}");
        assert!((p - 110.0).abs() < 1e-9, "forecast drifted: {p}");
    }

    #[test]
    fn each_expert_skips_invalid_values() {
        let experts: Vec<Box<dyn Forecaster + Send>> = vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(4)),
            Box::new(SlidingMedian::new(4)),
            Box::new(ExpSmoothing::new(0.3)),
        ];
        for mut e in experts {
            e.update(50.0);
            e.update(f64::NAN);
            e.update(-1.0);
            e.update(f64::INFINITY);
            assert_eq!(e.predict(), Some(50.0), "{} poisoned", e.name());
        }
    }
}
