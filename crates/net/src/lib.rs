//! Network performance prediction for checkpoint transfers.
//!
//! Checkpoints in a cycle-harvesting pool traverse a *shared* network to
//! the checkpoint manager, so the scheduler needs per-path estimates of
//! the checkpoint cost `C` and recovery cost `R`. The paper's system
//! "combines this model with predictions of network performance to the
//! storage site"; this crate supplies that component in the style of the
//! authors' Network Weather Service:
//!
//! * [`forecast`] — a family of time-series forecasters (last value,
//!   running mean, sliding mean/median, exponential smoothing) and an
//!   [`forecast::AdaptiveForecaster`] that tracks each expert's error and
//!   predicts with the current best, the NWS strategy.
//! * [`transfer`] — stochastic transfer-time models for the two paths the
//!   paper measures: the campus LAN (500 MB ≈ 110 s) and the wide-area
//!   path to the authors' home institution (500 MB ≈ 475 s).
//! * [`faults`] — deterministic, seed-driven fault injection for those
//!   transfers ([`faults::FaultPlan`]) and the manager-side resilience
//!   knobs ([`faults::RetryPolicy`]); per-decision seeding keeps a
//!   zero-fault plan bitwise-invisible to the drivers.
//! * [`protocol`] — the manager server's protocol vocabulary: priority
//!   lanes ([`protocol::Lane`], [`protocol::LaneWeights`]), admission
//!   control ([`protocol::AdmissionConfig`]), and the durable
//!   dead-letter queue ([`protocol::DeadLetterQueue`]) consumed by
//!   `chs-manager`.

#![deny(missing_docs)]

pub mod faults;
pub mod forecast;
pub mod protocol;
pub mod timevary;
pub mod transfer;

pub use faults::{FaultPlan, RetryPolicy, TransferFault};
pub use forecast::{valid_measurement, AdaptiveForecaster, Forecaster};
pub use protocol::{AdmissionConfig, DeadLetter, DeadLetterQueue, Lane, LaneWeights};
pub use timevary::{evaluate_forecasters, DiurnalPath, ForecasterScore};
pub use transfer::{NetworkPath, TransferModel};
