//! Checkpoint-manager protocol vocabulary: priority lanes, admission
//! control, and the durable dead-letter queue.
//!
//! The manager server (`chs-manager`) multiplexes many clients'
//! transfers over one shared link. This module holds the *protocol*
//! types that survive outside any one run: which lane a transfer rides
//! ([`Lane`]), how lanes split the link ([`LaneWeights`]), when a new
//! checkpoint is admitted ([`AdmissionConfig`]), and the durable record
//! of every transfer the manager gave up on ([`DeadLetter`],
//! [`DeadLetterQueue`]). The queue serializes to JSONL so a crashed
//! manager can be rebuilt from disk and its backlog replayed — the
//! "tracked ⇒ enqueued ⇒ replayed or explicitly abandoned" invariant
//! the conservation gates enforce.

use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// The priority lane a transfer rides on the manager's shared link.
///
/// Recovery outranks checkpoint outranks prefetch: a client blocked on
/// its image cannot work at all, a checkpoint protects work already
/// done, and a prefetch is pure opportunism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lane {
    /// Manager → client: recovery of a memory image (highest priority).
    Recovery,
    /// Client → manager: a checkpoint image.
    Checkpoint,
    /// Manager-side cache warming (lowest priority, shed freely).
    Prefetch,
}

impl Lane {
    /// Every lane, in priority order.
    pub const ALL: [Lane; 3] = [Lane::Recovery, Lane::Checkpoint, Lane::Prefetch];

    /// Dense index for per-lane arrays (priority order).
    pub fn index(self) -> usize {
        match self {
            Lane::Recovery => 0,
            Lane::Checkpoint => 1,
            Lane::Prefetch => 2,
        }
    }

    /// Human-readable lane name.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Recovery => "recovery",
            Lane::Checkpoint => "checkpoint",
            Lane::Prefetch => "prefetch",
        }
    }
}

/// Weighted shares of the manager link per lane: an active flow in lane
/// `l` receives `w_l / Σ n_m·w_m` of the capacity under weighted
/// max-min fair sharing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneWeights {
    /// Share weight of the recovery lane.
    pub recovery: f64,
    /// Share weight of the checkpoint lane.
    pub checkpoint: f64,
    /// Share weight of the prefetch lane.
    pub prefetch: f64,
}

impl Default for LaneWeights {
    fn default() -> Self {
        Self {
            recovery: 4.0,
            checkpoint: 2.0,
            prefetch: 1.0,
        }
    }
}

impl LaneWeights {
    /// Equal weights: weighted fair sharing degenerates to the classic
    /// `capacity / n` processor sharing of `run_contention`, which the
    /// manager's differential gates compare against bitwise.
    pub fn uniform() -> Self {
        Self {
            recovery: 1.0,
            checkpoint: 1.0,
            prefetch: 1.0,
        }
    }

    /// The weights as a dense array indexed by [`Lane::index`].
    pub fn as_array(&self) -> [f64; 3] {
        [self.recovery, self.checkpoint, self.prefetch]
    }

    /// The weight of one lane.
    pub fn weight(&self, lane: Lane) -> f64 {
        self.as_array()[lane.index()]
    }

    /// Check the weights: finite, positive, and ordered by priority
    /// (`recovery ≥ checkpoint ≥ prefetch`).
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("recovery", self.recovery),
            ("checkpoint", self.checkpoint),
            ("prefetch", self.prefetch),
        ] {
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("{name} weight must be finite > 0: {w}"));
            }
        }
        if self.recovery < self.checkpoint || self.checkpoint < self.prefetch {
            return Err(format!(
                "lane weights must respect priority (recovery ≥ checkpoint ≥ prefetch): \
                 {} / {} / {}",
                self.recovery, self.checkpoint, self.prefetch
            ));
        }
        Ok(())
    }
}

/// Admission control for new checkpoint (and prefetch) transfers.
///
/// Before starting a transfer the manager forecasts link utilization
/// over a short horizon: `(backlog + image) / (horizon_images ×
/// image)`, i.e. the time to drain the committed backlog plus this
/// transfer, relative to a budget of `horizon_images` uncontended image
/// transfers. When the forecast exceeds `watermark` the checkpoint is
/// *deferred*: the client falls back to its last verified image and the
/// interval's work is re-accounted as lost — the same arithmetic as a
/// retry-exhausted abandonment, but by explicit decision rather than
/// failure. Recovery transfers are never deferred: a client without its
/// image cannot run at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Master switch; disabled means every transfer is admitted.
    pub enabled: bool,
    /// Forecast-utilization threshold in (0, 1] above which new
    /// checkpoints are deferred.
    pub watermark: f64,
    /// Forecast horizon, in units of uncontended image-transfer times.
    pub horizon_images: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            watermark: 0.75,
            horizon_images: 4.0,
        }
    }
}

impl AdmissionConfig {
    /// Admission disabled: the no-admission baseline and the profile the
    /// differential gates use (nothing may perturb the classic path).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Check the knob ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !self.watermark.is_finite()
            || !(0.0..=1.0).contains(&self.watermark)
            || self.watermark == 0.0
        {
            return Err(format!("watermark must be in (0, 1]: {}", self.watermark));
        }
        if !self.horizon_images.is_finite() || self.horizon_images <= 0.0 {
            return Err(format!(
                "horizon_images must be finite > 0: {}",
                self.horizon_images
            ));
        }
        Ok(())
    }

    /// Forecast link utilization if a transfer of `image_mb` joins a
    /// link already owing `backlog_mb`.
    pub fn forecast_utilization(&self, backlog_mb: f64, image_mb: f64) -> f64 {
        if image_mb <= 0.0 {
            return 0.0;
        }
        (backlog_mb + image_mb) / (self.horizon_images * image_mb)
    }

    /// Whether a transfer of `image_mb` is admitted against the current
    /// backlog. Deterministic: a pure function of the two arguments.
    pub fn admits(&self, backlog_mb: f64, image_mb: f64) -> bool {
        !self.enabled || self.forecast_utilization(backlog_mb, image_mb) <= self.watermark
    }
}

/// A transfer the manager exhausted its retry budget on, preserved with
/// full resume state so a replay pass can finish the job later.
///
/// `(client, seq)` is the stable transfer id: `seq` counts transfer
/// phases on that client, so the id survives serialization, replay, and
/// any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// The owning client's stable id.
    pub client: u64,
    /// The transfer-phase sequence number on that client.
    pub seq: u64,
    /// Full image size, MB.
    pub image_mb: f64,
    /// Verified prefix already held by the manager, MB (0 after a
    /// corruption — corrupt payload is never resumable).
    pub delivered_mb: f64,
    /// Attempts consumed before the budget ran out.
    pub attempts: u32,
    /// Virtual time the letter was enqueued.
    pub enqueued_at: f64,
}

impl DeadLetter {
    /// Megabytes still to ship when replayed.
    pub fn remaining_mb(&self) -> f64 {
        self.image_mb - self.delivered_mb
    }

    /// Check the letter's invariants (used on deserialized queues).
    pub fn validate(&self) -> Result<(), String> {
        if !self.image_mb.is_finite() || self.image_mb <= 0.0 {
            return Err(format!("image_mb must be finite > 0: {}", self.image_mb));
        }
        if !self.delivered_mb.is_finite()
            || self.delivered_mb < 0.0
            || self.delivered_mb > self.image_mb
        {
            return Err(format!(
                "delivered_mb must be in [0, image_mb]: {}",
                self.delivered_mb
            ));
        }
        if !self.enqueued_at.is_finite() || self.enqueued_at < 0.0 {
            return Err(format!(
                "enqueued_at must be finite ≥ 0: {}",
                self.enqueued_at
            ));
        }
        Ok(())
    }
}

/// FIFO queue of dead letters with lifetime counters, the durable half
/// of the manager's failure path.
///
/// Every transfer that exhausts its [`crate::RetryPolicy`] budget is
/// pushed here — never just counted — and leaves only through
/// [`pop`](Self::pop) (a replay) or by the replay pass explicitly
/// abandoning it. The counters let conservation gates reconcile:
/// `enqueued == replayed + abandoned + len()`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeadLetterQueue {
    letters: Vec<DeadLetter>,
    /// Letters ever enqueued.
    pub enqueued: u64,
    /// Letters drained by a replay pass that delivered them.
    pub replayed: u64,
    /// Letters a replay pass explicitly gave up on (budget exhausted
    /// again).
    pub abandoned: u64,
}

impl DeadLetterQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a letter at the back.
    pub fn push(&mut self, letter: DeadLetter) {
        self.letters.push(letter);
        self.enqueued += 1;
    }

    /// Dequeue the oldest letter (FIFO). The caller must account it as
    /// replayed ([`Self::count_replayed`]) or abandoned
    /// ([`Self::count_abandoned`]) — the reconciliation gate checks.
    pub fn pop(&mut self) -> Option<DeadLetter> {
        if self.letters.is_empty() {
            None
        } else {
            Some(self.letters.remove(0))
        }
    }

    /// Record that a popped letter was delivered by replay.
    pub fn count_replayed(&mut self) {
        self.replayed += 1;
    }

    /// Record that a popped letter was explicitly abandoned by replay.
    pub fn count_abandoned(&mut self) {
        self.abandoned += 1;
    }

    /// Letters currently queued.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// Iterate the queued letters front to back.
    pub fn iter(&self) -> impl Iterator<Item = &DeadLetter> {
        self.letters.iter()
    }

    /// Total megabytes still owed by queued letters.
    pub fn total_remaining_mb(&self) -> f64 {
        self.letters.iter().map(|l| l.remaining_mb()).sum()
    }

    /// Counter reconciliation residual: letters ever enqueued minus
    /// (replayed + abandoned + still queued). Zero when no letter was
    /// silently dropped.
    pub fn reconciliation_residual(&self) -> i64 {
        self.enqueued as i64 - self.replayed as i64 - self.abandoned as i64 - self.len() as i64
    }

    /// Serialize to JSONL: one header line with the counters, then one
    /// line per queued letter — the manager's crash-durable format.
    pub fn write_jsonl<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "{}",
            serde_json::to_string(&[self.enqueued, self.replayed, self.abandoned])
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        )?;
        for letter in &self.letters {
            writeln!(
                w,
                "{}",
                serde_json::to_string(letter).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?
            )?;
        }
        Ok(())
    }

    /// Rebuild a queue from its JSONL form, validating every letter.
    /// Errors point at the offending line, like `ProcessLog::read_jsonl`.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Self> {
        let mut queue = Self::new();
        let mut saw_header = false;
        for (lineno, line) in r.lines().enumerate() {
            let line = line.map_err(|err| {
                std::io::Error::new(err.kind(), format!("line {}: {err}", lineno + 1))
            })?;
            if line.trim().is_empty() {
                continue;
            }
            let invalid = |msg: String| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {msg}", lineno + 1),
                )
            };
            if !saw_header {
                let counters: [u64; 3] =
                    serde_json::from_str(&line).map_err(|e| invalid(e.to_string()))?;
                queue.enqueued = counters[0];
                queue.replayed = counters[1];
                queue.abandoned = counters[2];
                saw_header = true;
                continue;
            }
            let letter: DeadLetter =
                serde_json::from_str(&line).map_err(|e| invalid(e.to_string()))?;
            letter.validate().map_err(invalid)?;
            queue.letters.push(letter);
        }
        if !saw_header {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "line 1: missing dead-letter queue header",
            ));
        }
        Ok(queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(client: u64, seq: u64) -> DeadLetter {
        DeadLetter {
            client,
            seq,
            image_mb: 500.0,
            delivered_mb: 120.0,
            attempts: 4,
            enqueued_at: 1_000.0,
        }
    }

    #[test]
    fn lane_index_and_order() {
        for (i, lane) in Lane::ALL.into_iter().enumerate() {
            assert_eq!(lane.index(), i);
        }
        assert_eq!(Lane::Recovery.name(), "recovery");
    }

    #[test]
    fn weights_validate_priority_order() {
        assert!(LaneWeights::default().validate().is_ok());
        assert!(LaneWeights::uniform().validate().is_ok());
        let bad = LaneWeights {
            recovery: 1.0,
            checkpoint: 2.0,
            prefetch: 1.0,
        };
        assert!(bad.validate().is_err());
        let nan = LaneWeights {
            recovery: f64::NAN,
            ..LaneWeights::default()
        };
        assert!(nan.validate().is_err());
        let zero = LaneWeights {
            prefetch: 0.0,
            ..LaneWeights::default()
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn admission_watermark_defers_only_above_threshold() {
        let adm = AdmissionConfig {
            enabled: true,
            watermark: 0.5,
            horizon_images: 4.0,
        };
        // Budget = 0.5 × 4 images = 2 images of backlog including self.
        assert!(adm.admits(0.0, 500.0));
        assert!(adm.admits(500.0, 500.0));
        assert!(!adm.admits(500.1, 500.0));
        assert!(AdmissionConfig::disabled().admits(1e12, 500.0));
        assert!(AdmissionConfig::default().validate().is_ok());
        let bad = AdmissionConfig {
            watermark: 0.0,
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
        let nan = AdmissionConfig {
            horizon_images: f64::NAN,
            ..AdmissionConfig::default()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn dead_letter_remaining_and_validation() {
        let l = letter(3, 7);
        assert_eq!(l.remaining_mb(), 380.0);
        assert!(l.validate().is_ok());
        let over = DeadLetter {
            delivered_mb: 600.0,
            ..l
        };
        assert!(over.validate().is_err());
        let nan = DeadLetter {
            image_mb: f64::NAN,
            ..l
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn queue_is_fifo_and_reconciles() {
        let mut q = DeadLetterQueue::new();
        q.push(letter(0, 1));
        q.push(letter(1, 1));
        q.push(letter(2, 1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.reconciliation_residual(), 0);
        let first = q.pop().unwrap();
        assert_eq!(first.client, 0);
        q.count_replayed();
        let second = q.pop().unwrap();
        assert_eq!(second.client, 1);
        q.count_abandoned();
        assert_eq!(q.len(), 1);
        assert_eq!(q.reconciliation_residual(), 0);
        assert_eq!(q.enqueued, 3);
        assert_eq!(q.replayed, 1);
        assert_eq!(q.abandoned, 1);
    }

    #[test]
    fn queue_jsonl_round_trip_preserves_state() {
        let mut q = DeadLetterQueue::new();
        for i in 0..4 {
            q.push(letter(i, i + 10));
        }
        q.pop().unwrap();
        q.count_replayed();
        let mut buf = Vec::new();
        q.write_jsonl(&mut buf).unwrap();
        let back = DeadLetterQueue::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(q, back);
        assert_eq!(back.total_remaining_mb(), q.total_remaining_mb());
    }

    #[test]
    fn queue_jsonl_errors_point_at_lines() {
        // Corrupt letter on line 3 (after header + one good letter).
        let mut buf = Vec::new();
        let mut q = DeadLetterQueue::new();
        q.push(letter(0, 1));
        q.write_jsonl(&mut buf).unwrap();
        buf.extend_from_slice(b"not json\n");
        let err = DeadLetterQueue::read_jsonl(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        // A NaN-bearing letter fails validation with its line number.
        let mut buf = Vec::new();
        q.write_jsonl(&mut buf).unwrap();
        buf.extend_from_slice(
            br#"{"client":9,"seq":9,"image_mb":500.0,"delivered_mb":-3.0,"attempts":1,"enqueued_at":0.0}
"#,
        );
        let err = DeadLetterQueue::read_jsonl(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("line 3") && msg.contains("delivered_mb"),
            "{msg}"
        );
        // Missing header.
        assert!(DeadLetterQueue::read_jsonl("".as_bytes()).is_err());
    }

    #[test]
    fn queue_serde_round_trip() {
        let mut q = DeadLetterQueue::new();
        q.push(letter(5, 2));
        let json = serde_json::to_string(&q).unwrap();
        let back: DeadLetterQueue = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
