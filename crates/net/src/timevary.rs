//! Time-varying network paths and forecaster evaluation.
//!
//! The paper holds `C` and `R` constant in simulation and measures them
//! live; §5.2 notes that "variation of network performance, particularly
//! in the wide area, makes these costs variable when the system is
//! actually used". This module models the dominant source of that
//! variation — diurnal congestion on shared links — and provides the
//! scoring harness that justifies the adaptive forecaster: evaluate every
//! expert's one-step-ahead error over any measurement series.

use crate::forecast::Forecaster;
use crate::transfer::{NetworkPath, TransferModel};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Seconds per day / hour.
const DAY: f64 = 86_400.0;
const HOUR: f64 = 3_600.0;

/// A network path whose effective bandwidth varies with time of day:
/// during weekday working hours the shared link carries everyone else's
/// traffic too, stretching transfers by `peak_slowdown`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPath {
    /// The base (off-peak) path.
    pub base: NetworkPath,
    /// Multiplier on transfer durations during working hours (≥ 1).
    pub peak_slowdown: f64,
    /// Working-hours window, local hours (e.g. 9–17).
    pub peak_hours: (f64, f64),
}

impl DiurnalPath {
    /// Campus path with mild working-hours congestion.
    pub fn campus_diurnal() -> Self {
        Self {
            base: NetworkPath::campus(),
            peak_slowdown: 1.6,
            peak_hours: (9.0, 17.0),
        }
    }

    /// Wide-area path with strong working-hours congestion.
    pub fn wide_area_diurnal() -> Self {
        Self {
            base: NetworkPath::wide_area(),
            peak_slowdown: 2.2,
            peak_hours: (8.0, 18.0),
        }
    }

    /// Whether `t` (virtual seconds since a Monday 00:00) falls in the
    /// congested window of a weekday.
    pub fn is_peak(&self, t: f64) -> bool {
        let weekday = ((t / DAY) as u64) % 7 < 5;
        let hour = (t % DAY) / HOUR;
        weekday && hour >= self.peak_hours.0 && hour < self.peak_hours.1
    }

    /// The duration multiplier in effect at `t`.
    pub fn slowdown_at(&self, t: f64) -> f64 {
        if self.is_peak(t) {
            self.peak_slowdown
        } else {
            1.0
        }
    }

    /// Draw one transfer duration for an image of `size_mb` starting at
    /// virtual time `t`.
    pub fn sample_duration_at(
        &self,
        t: f64,
        size_mb: f64,
        model: &TransferModel,
        rng: &mut dyn RngCore,
    ) -> f64 {
        model.sample_duration(size_mb, rng) * self.slowdown_at(t)
    }

    /// Expected transfer duration at `t`.
    pub fn expected_duration_at(&self, t: f64, size_mb: f64, model: &TransferModel) -> f64 {
        model.expected_duration(size_mb) * self.slowdown_at(t)
    }
}

/// One forecaster's score over a measurement series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecasterScore {
    /// The forecaster's name.
    pub name: String,
    /// Mean squared one-step-ahead error (lower is better).
    pub mse: f64,
    /// Mean absolute one-step-ahead error.
    pub mae: f64,
    /// Predictions scored (measurements after the first).
    pub n: usize,
}

/// Score a battery of forecasters on a measurement series by streaming
/// it through each: at every step the forecaster predicts before seeing
/// the next value.
pub fn evaluate_forecasters(
    mut experts: Vec<Box<dyn Forecaster + Send>>,
    series: &[f64],
) -> Vec<ForecasterScore> {
    let mut sq = vec![0.0f64; experts.len()];
    let mut abs = vec![0.0f64; experts.len()];
    let mut counts = vec![0usize; experts.len()];
    for &value in series {
        for (i, e) in experts.iter_mut().enumerate() {
            if let Some(p) = e.predict() {
                let err = p - value;
                sq[i] += err * err;
                abs[i] += err.abs();
                counts[i] += 1;
            }
            e.update(value);
        }
    }
    experts
        .iter()
        .enumerate()
        .map(|(i, e)| ForecasterScore {
            name: e.name().to_string(),
            mse: if counts[i] > 0 {
                sq[i] / counts[i] as f64
            } else {
                f64::INFINITY
            },
            mae: if counts[i] > 0 {
                abs[i] / counts[i] as f64
            } else {
                f64::INFINITY
            },
            n: counts[i],
        })
        .collect()
}

/// The standard battery used by [`crate::AdaptiveForecaster::standard`],
/// reconstructed for stand-alone evaluation.
pub fn standard_battery() -> Vec<Box<dyn Forecaster + Send>> {
    use crate::forecast::{ExpSmoothing, LastValue, RunningMean, SlidingMean, SlidingMedian};
    vec![
        Box::new(LastValue::default()),
        Box::new(RunningMean::default()),
        Box::new(SlidingMean::new(10)),
        Box::new(SlidingMedian::new(10)),
        Box::new(ExpSmoothing::new(0.1)),
        Box::new(ExpSmoothing::new(0.3)),
        Box::new(ExpSmoothing::new(0.6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn peak_detection() {
        let p = DiurnalPath::campus_diurnal();
        // Monday 10:00 is peak; Monday 03:00 and Saturday 10:00 are not.
        assert!(p.is_peak(10.0 * HOUR));
        assert!(!p.is_peak(3.0 * HOUR));
        assert!(!p.is_peak(5.0 * DAY + 10.0 * HOUR));
        assert_eq!(p.slowdown_at(10.0 * HOUR), 1.6);
        assert_eq!(p.slowdown_at(3.0 * HOUR), 1.0);
    }

    #[test]
    fn peak_window_edges_are_half_open() {
        // The window is [start, end): the first peak second slows down,
        // the first post-peak second does not.
        let p = DiurnalPath::campus_diurnal();
        let (start, end) = p.peak_hours;
        assert!(p.is_peak(start * HOUR));
        assert!(!p.is_peak(start * HOUR - 1.0));
        assert!(!p.is_peak(end * HOUR));
        assert!(p.is_peak(end * HOUR - 1.0));
        assert_eq!(p.slowdown_at(start * HOUR), p.peak_slowdown);
        assert_eq!(p.slowdown_at(end * HOUR), 1.0);
        // Same boundaries hold mid-week (Wednesday).
        let wed = 2.0 * DAY;
        assert!(p.is_peak(wed + start * HOUR));
        assert!(!p.is_peak(wed + end * HOUR));
    }

    #[test]
    fn weekday_window_and_day_wraparound() {
        let p = DiurnalPath::wide_area_diurnal();
        let noon = 12.0 * HOUR;
        // Friday (day 4) is the last peak-eligible day; Saturday and
        // Sunday are quiet even at noon.
        assert!(p.is_peak(4.0 * DAY + noon));
        assert!(!p.is_peak(5.0 * DAY + noon));
        assert!(!p.is_peak(6.0 * DAY + noon));
        // The week wraps: day 7 is Monday again, and the pattern repeats
        // arbitrarily many weeks out.
        assert!(p.is_peak(7.0 * DAY + noon));
        assert!(!p.is_peak(12.0 * DAY + noon)); // Saturday of week 2
        for week in 0..6 {
            let base = week as f64 * 7.0 * DAY;
            assert!(p.is_peak(base + noon), "week {week} Monday noon");
            assert!(!p.is_peak(base + noon + 5.0 * DAY), "week {week} Saturday");
            // Midnight boundary: the day rolls over cleanly at t % DAY.
            assert!(!p.is_peak(base + 1.0 * DAY - 1.0));
            assert!(!p.is_peak(base + 1.0 * DAY));
        }
    }

    #[test]
    fn expected_duration_monotone_in_size() {
        // Bigger images never finish sooner, peak or off-peak.
        for p in [
            DiurnalPath::campus_diurnal(),
            DiurnalPath::wide_area_diurnal(),
        ] {
            let model = TransferModel::new(p.base);
            for &t in &[2.0 * HOUR, 12.0 * HOUR, 5.0 * DAY + 12.0 * HOUR] {
                let mut prev = 0.0;
                for step in 1..=40 {
                    let size = step as f64 * 50.0;
                    let d = p.expected_duration_at(t, size, &model);
                    assert!(
                        d >= prev,
                        "t {t}: expected duration fell from {prev} to {d} at {size} MB"
                    );
                    prev = d;
                }
            }
        }
    }

    #[test]
    fn peak_transfers_slower() {
        let p = DiurnalPath::wide_area_diurnal();
        let model = TransferModel::new(p.base);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 5_000;
        let mean = |t: f64, rng: &mut ChaCha8Rng| {
            (0..n)
                .map(|_| p.sample_duration_at(t, 500.0, &model, rng))
                .sum::<f64>()
                / n as f64
        };
        let peak = mean(10.0 * HOUR, &mut rng);
        let off = mean(2.0 * HOUR, &mut rng);
        assert!(
            (peak / off - p.peak_slowdown).abs() < 0.1,
            "peak {peak} off {off}"
        );
    }

    #[test]
    fn expected_duration_tracks_slowdown() {
        let p = DiurnalPath::campus_diurnal();
        let model = TransferModel::new(p.base);
        let off = p.expected_duration_at(2.0 * HOUR, 500.0, &model);
        let peak = p.expected_duration_at(10.0 * HOUR, 500.0, &model);
        assert!((peak / off - 1.6).abs() < 1e-12);
    }

    #[test]
    fn evaluation_ranks_correctly_on_stationary_noise() {
        // Alternating values: last-value has the worst MSE, means best.
        let series: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 100.0 } else { 120.0 })
            .collect();
        let scores = evaluate_forecasters(standard_battery(), &series);
        let last = scores.iter().find(|s| s.name == "last-value").unwrap();
        let run = scores.iter().find(|s| s.name == "running-mean").unwrap();
        assert!(
            run.mse < last.mse,
            "running-mean {} !< last-value {}",
            run.mse,
            last.mse
        );
        for s in &scores {
            assert!(s.n >= 399 - 10, "{} scored too few: {}", s.name, s.n);
            assert!(s.mae <= s.mse.sqrt() + 1e-9, "MAE ≤ RMSE for {}", s.name);
        }
    }

    #[test]
    fn evaluation_ranks_trackers_on_level_shift() {
        // Step change: the high-gain smoother beats the running mean.
        let mut series = vec![110.0; 50];
        series.extend(vec![475.0; 150]);
        let scores = evaluate_forecasters(standard_battery(), &series);
        let fast = scores.iter().find(|s| s.name == "exp-smoothing").unwrap();
        let run = scores.iter().find(|s| s.name == "running-mean").unwrap();
        assert!(fast.mse < run.mse);
    }

    #[test]
    fn diurnal_series_favors_window_forecasters() {
        // A realistic use: transfer times over a diurnal path. Adaptive
        // windowed experts should beat the all-history mean.
        let p = DiurnalPath::campus_diurnal();
        let model = TransferModel::new(p.base);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let series: Vec<f64> = (0..600)
            .map(|i| p.sample_duration_at(i as f64 * 900.0, 500.0, &model, &mut rng))
            .collect();
        let scores = evaluate_forecasters(standard_battery(), &series);
        let sliding = scores.iter().find(|s| s.name == "sliding-mean").unwrap();
        let run = scores.iter().find(|s| s.name == "running-mean").unwrap();
        assert!(
            sliding.mse <= run.mse * 1.05,
            "sliding {} should not lose badly to running {}",
            sliding.mse,
            run.mse
        );
    }
}
