//! Stochastic transfer-time models for checkpoint traffic.
//!
//! **Substitution note (DESIGN.md §5).** The paper measures real transfers
//! of 500 MB images over (a) the UW campus network (average 110 s) and
//! (b) the commodity Internet to the authors' home institution (average
//! 475 s). We model a path's per-transfer duration as log-normal around a
//! configurable mean with configurable dispersion — log-normal is the
//! standard empirical model for wide-area TCP transfer times and keeps
//! durations strictly positive. Each transfer also pays a fixed setup
//! latency (TCP/manager handshake), which the paper notes is negligible
//! against the bulk transfer.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// The checkpoint image size the paper uses throughout (megabytes):
/// machines in the pool had ≥ 512 MB of memory and the target application
/// checkpoints its full image.
pub const PAPER_IMAGE_MB: f64 = 500.0;

/// A network path between execution machines and the checkpoint manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkPath {
    /// Mean transfer time for a 500 MB image, seconds.
    pub mean_500mb_seconds: f64,
    /// σ of `ln(duration)`: dispersion of individual transfers.
    pub log_sigma: f64,
    /// Fixed per-transfer setup latency, seconds.
    pub setup_latency: f64,
}

impl NetworkPath {
    /// The UW campus LAN path of Table 4 (average C ≈ 110 s).
    pub fn campus() -> Self {
        Self {
            mean_500mb_seconds: 110.0,
            log_sigma: 0.18,
            setup_latency: 0.5,
        }
    }

    /// The wide-area path of Table 5 (average C ≈ 475 s; commodity
    /// Internet shows more dispersion).
    pub fn wide_area() -> Self {
        Self {
            mean_500mb_seconds: 475.0,
            log_sigma: 0.35,
            setup_latency: 2.0,
        }
    }

    /// A custom path from a mean 500 MB transfer time.
    pub fn with_mean(mean_500mb_seconds: f64) -> Self {
        Self {
            mean_500mb_seconds,
            log_sigma: 0.25,
            setup_latency: 1.0,
        }
    }

    /// Effective mean bandwidth in MB/s.
    pub fn mean_bandwidth(&self) -> f64 {
        PAPER_IMAGE_MB / self.mean_500mb_seconds
    }
}

/// Samples transfer durations for checkpoint/recovery images on one path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    path: NetworkPath,
    /// `μ` of the underlying normal so the log-normal's *mean* equals the
    /// configured path mean: `μ = ln(m) − σ²/2`.
    ln_mu_500: f64,
}

impl TransferModel {
    /// Build a model for `path`.
    pub fn new(path: NetworkPath) -> Self {
        let sigma = path.log_sigma;
        let ln_mu_500 = path.mean_500mb_seconds.ln() - 0.5 * sigma * sigma;
        Self { path, ln_mu_500 }
    }

    /// The underlying path.
    pub fn path(&self) -> &NetworkPath {
        &self.path
    }

    /// Expected transfer duration for an image of `size_mb` megabytes
    /// (linear in size over the bulk-transfer regime, plus setup).
    pub fn expected_duration(&self, size_mb: f64) -> f64 {
        self.path.setup_latency + self.path.mean_500mb_seconds * (size_mb / PAPER_IMAGE_MB)
    }

    /// Draw one transfer duration for an image of `size_mb` megabytes.
    pub fn sample_duration(&self, size_mb: f64, rng: &mut dyn RngCore) -> f64 {
        let z = standard_normal(rng);
        let bulk_500 = (self.ln_mu_500 + self.path.log_sigma * z).exp();
        self.path.setup_latency + bulk_500 * (size_mb / PAPER_IMAGE_MB)
    }

    /// Megabytes that cross the wire when a transfer of `size_mb` is cut
    /// off after `elapsed` of a transfer that would have taken `full`
    /// seconds: proportional progress, setup latency carries no payload.
    pub fn partial_megabytes(&self, size_mb: f64, elapsed: f64, full: f64) -> f64 {
        let setup = self.path.setup_latency;
        if full <= setup || elapsed <= setup {
            return 0.0;
        }
        let frac = ((elapsed - setup) / (full - setup)).clamp(0.0, 1.0);
        size_mb * frac
    }
}

fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_path_presets() {
        assert_eq!(NetworkPath::campus().mean_500mb_seconds, 110.0);
        assert_eq!(NetworkPath::wide_area().mean_500mb_seconds, 475.0);
        assert!(NetworkPath::wide_area().log_sigma > NetworkPath::campus().log_sigma);
    }

    #[test]
    fn mean_bandwidth() {
        let b = NetworkPath::campus().mean_bandwidth();
        assert!((b - 500.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn sample_mean_matches_configured_mean() {
        let m = TransferModel::new(NetworkPath::campus());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_duration(PAPER_IMAGE_MB, &mut rng))
            .sum::<f64>()
            / n as f64;
        let expected = m.expected_duration(PAPER_IMAGE_MB);
        assert!(
            (mean / expected - 1.0).abs() < 0.01,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn durations_strictly_positive() {
        let m = TransferModel::new(NetworkPath::wide_area());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(m.sample_duration(500.0, &mut rng) > 0.0);
        }
    }

    #[test]
    fn expected_duration_linear_in_size() {
        let m = TransferModel::new(NetworkPath::campus());
        let d250 = m.expected_duration(250.0);
        let d500 = m.expected_duration(500.0);
        // Subtracting setup, bulk time halves.
        let setup = m.path().setup_latency;
        assert!(((d250 - setup) * 2.0 - (d500 - setup)).abs() < 1e-9);
    }

    #[test]
    fn partial_transfer_accounting() {
        let m = TransferModel::new(NetworkPath::campus());
        let full = 110.5; // includes 0.5 s setup
        assert_eq!(m.partial_megabytes(500.0, 0.2, full), 0.0); // still in setup
        let half = m.partial_megabytes(500.0, 0.5 + 55.0, full);
        assert!((half - 250.0).abs() < 1e-9, "half={half}");
        assert_eq!(m.partial_megabytes(500.0, 1_000.0, full), 500.0); // clamp
    }

    #[test]
    fn wide_area_more_variable_than_campus() {
        let campus = TransferModel::new(NetworkPath::campus());
        let wan = TransferModel::new(NetworkPath::wide_area());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let cv = |m: &TransferModel, rng: &mut ChaCha8Rng| {
            let xs: Vec<f64> = (0..n).map(|_| m.sample_duration(500.0, rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            var.sqrt() / mean
        };
        assert!(cv(&wan, &mut rng) > cv(&campus, &mut rng));
    }
}
