//! Numerical kernel for the `cycle-harvest` workspace.
//!
//! The paper relies on Matlab (maximum-likelihood fitting) and *Numerical
//! Recipes in C* (golden-section minimization). This crate supplies the
//! equivalent building blocks from scratch:
//!
//! * [`special`] — log-gamma, error function, regularized incomplete gamma
//!   and beta functions, digamma.
//! * [`quadrature`] — adaptive Simpson and Gauss–Legendre integration.
//! * [`optimize`] — golden-section search and Brent's method for 1-D
//!   minimization, plus bracketing.
//! * [`roots`] — bisection, safeguarded Newton, and Brent root finding.
//!
//! Everything is `f64`, deterministic, and allocation-free on the hot
//! paths so the checkpoint-interval optimizer can call it thousands of
//! times per schedule without pressure on the allocator.

#![deny(missing_docs)]

pub mod optimize;
pub mod quadrature;
pub mod roots;
pub mod special;

/// Errors produced by the numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// The supplied interval does not bracket a root/minimum as required.
    InvalidBracket {
        /// Lower end of the offending interval.
        lo: f64,
        /// Upper end of the offending interval.
        hi: f64,
    },
    /// An iterative routine failed to converge within its iteration cap.
    NoConvergence {
        /// Name of the routine that gave up.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside the routine's domain (NaN, negative where
    /// positivity is required, etc.).
    DomainError {
        /// Name of the routine that rejected the argument.
        routine: &'static str,
        /// Human-readable description of the violation.
        message: &'static str,
    },
}

impl std::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericsError::InvalidBracket { lo, hi } => {
                write!(f, "invalid bracket [{lo}, {hi}]")
            }
            NumericsError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} failed to converge after {iterations} iterations"
                )
            }
            NumericsError::DomainError { routine, message } => {
                write!(f, "{routine}: {message}")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, NumericsError>;

/// Machine-epsilon-scaled comparison helper: `a` and `b` agree to within
/// `rel` relative tolerance or `abs` absolute tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-15, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-15, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9, 0.0));
        assert!(!approx_eq(1e12, 1.1e12, 1e-9, 0.0));
    }

    #[test]
    fn error_display() {
        let e = NumericsError::InvalidBracket { lo: 0.0, hi: 1.0 };
        assert!(e.to_string().contains("invalid bracket"));
        let e = NumericsError::NoConvergence {
            routine: "newton",
            iterations: 5,
        };
        assert!(e.to_string().contains("newton"));
        let e = NumericsError::DomainError {
            routine: "ln_gamma",
            message: "x <= 0",
        };
        assert!(e.to_string().contains("ln_gamma"));
    }
}
