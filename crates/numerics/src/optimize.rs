//! One-dimensional minimization: bracketing, golden-section search, and
//! Brent's parabolic-interpolation method.
//!
//! The paper minimizes the overhead ratio `Γ(T)/T` with "the Golden
//! Section Search method as implemented in Numerical Recipes"; we provide
//! that algorithm (with the same bracketing contract as NR's
//! `mnbrak`/`golden`) plus Brent's method as a faster drop-in used by the
//! schedule optimizer's ablation benches.

use crate::{NumericsError, Result};

/// Golden ratio constants: `R = (√5 − 1)/2 ≈ 0.618`, `C = 1 − R`.
const GOLD_R: f64 = 0.618_033_988_749_894_8;
const GOLD_C: f64 = 1.0 - GOLD_R;

/// Default fractional precision for the minimizers. Below ~√ε golden
/// section cannot distinguish function values, so this is the floor NR
/// recommends.
pub const DEFAULT_TOL: f64 = 3e-8;

/// Result of a 1-D minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Abscissa of the located minimum.
    pub x: f64,
    /// Function value at [`Minimum::x`].
    pub f: f64,
    /// Number of function evaluations consumed.
    pub evaluations: usize,
}

/// A triple `(a, b, c)` with `a < b < c` and `f(b) < f(a)`, `f(b) < f(c)`:
/// the precondition for golden-section and Brent minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Left edge.
    pub a: f64,
    /// Interior point with the smallest function value seen so far.
    pub b: f64,
    /// Right edge.
    pub c: f64,
    /// `f(b)`.
    pub fb: f64,
}

/// Expand downhill from `(a, b)` until a bracketing triple is found
/// (Numerical Recipes `mnbrak`, with golden-ratio expansion and parabolic
/// extrapolation steps).
///
/// # Errors
/// [`NumericsError::NoConvergence`] if no bracket is found within 100
/// expansions (monotone function on the search ray).
pub fn bracket_minimum<F: Fn(f64) -> f64>(f: F, a0: f64, b0: f64) -> Result<Bracket> {
    const GLIMIT: f64 = 100.0;
    const TINY: f64 = 1e-20;
    const MAX_EXPAND: usize = 100;

    let (mut ax, mut bx) = (a0, b0);
    let mut fa = f(ax);
    let mut fb = f(bx);
    if fb > fa {
        std::mem::swap(&mut ax, &mut bx);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut cx = bx + (1.0 + GOLD_R) * (bx - ax);
    let mut fc = f(cx);
    let mut iters = 0usize;
    while fb >= fc {
        iters += 1;
        if iters > MAX_EXPAND {
            return Err(NumericsError::NoConvergence {
                routine: "bracket_minimum",
                iterations: MAX_EXPAND,
            });
        }
        // Parabolic extrapolation from a, b, c.
        let r = (bx - ax) * (fb - fc);
        let q = (bx - cx) * (fb - fa);
        let denom = 2.0 * (q - r).abs().max(TINY) * (q - r).signum();
        let mut u = bx - ((bx - cx) * q - (bx - ax) * r) / denom;
        let ulim = bx + GLIMIT * (cx - bx);
        if (bx - u) * (u - cx) > 0.0 {
            // u between b and c
            let fu = f(u);
            if fu < fc {
                return Ok(order_bracket(bx, u, cx, fu));
            } else if fu > fb {
                return Ok(order_bracket(ax, bx, u, fb));
            }
            u = cx + (1.0 + GOLD_R) * (cx - bx);
        } else if (cx - u) * (u - ulim) > 0.0 {
            // u between c and limit
            let fu_probe = f(u);
            if fu_probe < fc {
                let unew = u + (1.0 + GOLD_R) * (u - cx);
                ax = cx;
                fa = fc;
                bx = u;
                fb = fu_probe;
                cx = unew;
                fc = f(cx);
                continue;
            }
            ax = bx;
            fa = fb;
            bx = cx;
            fb = fc;
            cx = u;
            fc = fu_probe;
            continue;
        } else if (u - ulim) * (ulim - cx) >= 0.0 {
            u = ulim;
        } else {
            u = cx + (1.0 + GOLD_R) * (cx - bx);
        }
        let fu = f(u);
        ax = bx;
        fa = fb;
        bx = cx;
        fb = fc;
        cx = u;
        fc = fu;
    }
    Ok(order_bracket(ax, bx, cx, fb))
}

fn order_bracket(a: f64, b: f64, c: f64, fb: f64) -> Bracket {
    if a <= c {
        Bracket { a, b, c, fb }
    } else {
        Bracket { a: c, b, c: a, fb }
    }
}

/// Golden-section search for the minimum of `f` inside `bracket`, to
/// fractional precision `tol` (Numerical Recipes `golden`).
pub fn golden_section<F: Fn(f64) -> f64>(f: F, bracket: Bracket, tol: f64) -> Result<Minimum> {
    let Bracket { a, b, c, .. } = bracket;
    if !(a < b && b < c) {
        return Err(NumericsError::InvalidBracket { lo: a, hi: c });
    }
    let tol = tol.max(f64::EPSILON.sqrt());
    let mut x0 = a;
    let mut x3 = c;
    let (mut x1, mut x2);
    if (c - b).abs() > (b - a).abs() {
        x1 = b;
        x2 = b + GOLD_C * (c - b);
    } else {
        x2 = b;
        x1 = b - GOLD_C * (b - a);
    }
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2usize;
    const MAX_ITER: usize = 200;
    let mut iters = 0usize;
    while (x3 - x0).abs() > tol * (x1.abs() + x2.abs()).max(1e-30) {
        iters += 1;
        if iters > MAX_ITER {
            return Err(NumericsError::NoConvergence {
                routine: "golden_section",
                iterations: MAX_ITER,
            });
        }
        if f2 < f1 {
            x0 = x1;
            x1 = x2;
            x2 = GOLD_R * x2 + GOLD_C * x3;
            f1 = f2;
            f2 = f(x2);
        } else {
            x3 = x2;
            x2 = x1;
            x1 = GOLD_R * x1 + GOLD_C * x0;
            f2 = f1;
            f1 = f(x1);
        }
        evals += 1;
    }
    Ok(if f1 < f2 {
        Minimum {
            x: x1,
            f: f1,
            evaluations: evals,
        }
    } else {
        Minimum {
            x: x2,
            f: f2,
            evaluations: evals,
        }
    })
}

/// Brent's method: golden-section with parabolic acceleration (Numerical
/// Recipes `brent`). Typically converges in a third of the evaluations of
/// pure golden section for smooth objectives like `Γ(T)/T`.
pub fn brent_min<F: Fn(f64) -> f64>(f: F, bracket: Bracket, tol: f64) -> Result<Minimum> {
    const ITMAX: usize = 200;
    const ZEPS: f64 = 1e-18;
    let Bracket {
        a: ba,
        b: bb,
        c: bc,
        ..
    } = bracket;
    if !(ba < bb && bb < bc) {
        return Err(NumericsError::InvalidBracket { lo: ba, hi: bc });
    }
    let tol = tol.max(f64::EPSILON.sqrt());
    let (mut a, mut b) = (ba, bc);
    let mut x = bb;
    let mut w = bb;
    let mut v = bb;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut e: f64 = 0.0;
    let mut d: f64 = 0.0;
    // One evaluation per iteration plus the initial f(x); tracked for the
    // golden-vs-Brent ablation bench.
    let mut evals = 1usize;
    #[allow(clippy::explicit_counter_loop)]
    for _ in 0..ITMAX {
        let xm = 0.5 * (a + b);
        let tol1 = tol * x.abs() + ZEPS;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (b - a) {
            return Ok(Minimum {
                x,
                f: fx,
                evaluations: evals,
            });
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Trial parabolic fit through x, v, w.
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = e;
            e = d;
            if p.abs() < (0.5 * q * etemp).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = tol1.copysign(xm - x);
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { a - x } else { b - x };
            d = GOLD_C * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else {
            x + tol1.copysign(d)
        };
        let fu = f(u);
        evals += 1;
        if fu <= fx {
            if u >= x {
                a = x;
            } else {
                b = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "brent_min",
        iterations: ITMAX,
    })
}

/// Convenience: bracket from `(a0, b0)` then minimize with golden section.
pub fn minimize_golden<F: Fn(f64) -> f64 + Copy>(
    f: F,
    a0: f64,
    b0: f64,
    tol: f64,
) -> Result<Minimum> {
    let br = bracket_minimum(f, a0, b0)?;
    golden_section(f, br, tol)
}

/// Convenience: bracket from `(a0, b0)` then minimize with Brent.
pub fn minimize_brent<F: Fn(f64) -> f64 + Copy>(
    f: F,
    a0: f64,
    b0: f64,
    tol: f64,
) -> Result<Minimum> {
    let br = bracket_minimum(f, a0, b0)?;
    brent_min(f, br, tol)
}

/// Minimize over a *bounded* interval `[lo, hi]` by golden section without
/// requiring an interior bracket (clamps to the boundary minimum if the
/// function is monotone on the interval). Used when `T` must respect
/// scheduler-imposed bounds.
pub fn minimize_bounded<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<Minimum> {
    let valid = lo < hi && lo.is_finite() && hi.is_finite();
    if !valid {
        return Err(NumericsError::InvalidBracket { lo, hi });
    }
    let tol = tol.max(f64::EPSILON.sqrt());
    let mut a = lo;
    let mut b = hi;
    let mut x1 = a + GOLD_C * (b - a);
    let mut x2 = b - GOLD_C * (b - a);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2usize;
    const MAX_ITER: usize = 300;
    for _ in 0..MAX_ITER {
        if (b - a).abs() <= tol * (x1.abs() + x2.abs()).max(1.0) {
            let (x, fx) = if f1 < f2 { (x1, f1) } else { (x2, f2) };
            // Also compare against the boundary values in case of
            // monotonicity toward an edge.
            let fl = f(lo);
            let fh = f(hi);
            evals += 2;
            let mut best = Minimum {
                x,
                f: fx,
                evaluations: evals,
            };
            if fl < best.f {
                best = Minimum {
                    x: lo,
                    f: fl,
                    evaluations: evals,
                };
            }
            if fh < best.f {
                best = Minimum {
                    x: hi,
                    f: fh,
                    evaluations: evals,
                };
            }
            return Ok(best);
        }
        if f1 < f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = a + GOLD_C * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = b - GOLD_C * (b - a);
            f2 = f(x2);
        }
        evals += 1;
    }
    Err(NumericsError::NoConvergence {
        routine: "minimize_bounded",
        iterations: MAX_ITER,
    })
}

/// Step-size floor for [`spi_refine`]: below this the parabola vertex is
/// dominated by floating-point noise in `f` rather than by curvature, so
/// shrinking further cannot improve the estimate (`h* ~ ε^{1/3}`).
pub const SPI_H_FLOOR: f64 = 1e-5;

/// Refine a nearby local minimum by successive parabolic interpolation.
///
/// Starting from `x0` (assumed within the minimum's basin), fit a
/// parabola through `x − h`, `x`, `x + h`, jump to its vertex, and shrink
/// `h` toward [`SPI_H_FLOOR`]. Where the three points are not locally
/// convex the step degrades to a downhill move of size `h`, so the
/// routine still makes progress from a start on a monotone stretch.
///
/// Unlike the bracketing minimizers this never fails: it returns the best
/// point seen, which is `x0` itself in the worst case. The schedule
/// optimizer uses it as the *common* final stage of both the cold
/// (full-bracket) and warm-started `T_opt` searches; because both finish
/// with the same floor-limited polish they agree to ~`1e-10` in `x`,
/// which is what lets warm-started sweeps reproduce cold-sweep results.
pub fn spi_refine<F: Fn(f64) -> f64>(f: F, x0: f64, h0: f64, max_steps: usize) -> Minimum {
    let mut x = x0;
    let mut fx = f(x);
    let mut evals = 1usize;
    let mut h = h0.max(SPI_H_FLOOR);
    for _ in 0..max_steps {
        let (xl, xr) = (x - h, x + h);
        let (fl, fr) = (f(xl), f(xr));
        evals += 2;
        let denom = fl - 2.0 * fx + fr;
        let dx = if denom > 0.0 {
            (0.5 * h * (fl - fr) / denom).clamp(-h, h)
        } else if fl < fr {
            -h
        } else {
            h
        };
        let xn = x + dx;
        let fn_ = f(xn);
        evals += 1;
        // Keep the best of the four points examined this step.
        let mut best = (x, fx);
        for cand in [(xl, fl), (xr, fr), (xn, fn_)] {
            if cand.1 < best.1 {
                best = cand;
            }
        }
        (x, fx) = best;
        if h <= SPI_H_FLOOR {
            break;
        }
        // Near a quadratic minimum |dx| contracts quadratically; the 0.1
        // cap keeps progress on stubborn (non-convex-at-scale) stretches.
        h = (dx.abs() * 2.0).max(h * 0.025).max(SPI_H_FLOOR);
    }
    Minimum {
        x,
        f: fx,
        evaluations: evals,
    }
}

/// Result of a lane-batched local refinement ([`minimize_batched_near`]).
#[derive(Debug, Clone, Copy)]
pub struct BatchMinimum {
    /// Best abscissa: the unevaluated parabola vertex of the converged
    /// bracket when the search certified an interior minimum, otherwise
    /// the best evaluated probe.
    pub x: f64,
    /// Best *evaluated* objective value (at a probe within the converged
    /// bracket — not necessarily at `x`, which may be the refined
    /// vertex).
    pub f: f64,
    /// Number of 4-probe batches issued.
    pub batches: usize,
    /// True when the search walked (or was pinned) outside its trust
    /// window `[x0 - span, x0 + span]` minus the same `0.05` guard band
    /// the scalar warm search uses; callers should fall back to a full
    /// bracketed search exactly as they would for a scalar escape.
    pub escaped: bool,
}

/// Lane-batched warm-start minimizer: refine a minimum near `x0` issuing
/// 4 probes per objective call.
///
/// The counterpart of [`spi_refine`] for objectives that expose a batched
/// `[f64; 4] -> [f64; 4]` evaluation (the Γ lane kernels). The search runs
/// in *rounds*: each round fixes a window around the incumbent, evaluates
/// the window's 4 interior quintile points per batch, and shrinks the
/// bracket onto the parabola vertex of the best interior triple (×0.14
/// per batch when the triple is convex, ×0.4 neighbour-shrink otherwise;
/// never expanding mid-round — that keeps the bracket update monotone and
/// oscillation-free). A round that converges *at* its own window edge
/// means the minimum may lie outside: the window is re-centred on the
/// pinned edge, widened ×4, and the round re-run, up to the trust span
/// `[x0 − span, x0 + span] ∩ [lo, hi]`. A round that converges in the
/// interior returns the (unevaluated) parabola vertex of the final
/// triple — a strictly better abscissa estimate than any probe on the
/// sub-`tol` window, at zero extra batches.
///
/// The routine never fails: it returns the best point seen. Accuracy is
/// governed by `tol` (bracket width at which bracketing stops); with the
/// vertex polish the returned `x` is typically within `tol / 10` of the
/// local minimizer for smooth objectives. `escaped` is reported when the
/// search pinned to the trust-span or hard `[lo, hi]` boundary (or ran
/// out of batches still pinned) — callers should then fall back to their
/// full bracketed scalar search, exactly as the scalar warm path does. It
/// does **not** reproduce [`spi_refine`]'s iterates bitwise — callers
/// that need the frozen scalar answer must keep calling the scalar path.
#[allow(clippy::too_many_arguments)]
pub fn minimize_batched_near<F: FnMut([f64; 4]) -> [f64; 4]>(
    mut f: F,
    x0: f64,
    half_width: f64,
    lo: f64,
    hi: f64,
    span: f64,
    tol: f64,
    max_batches: usize,
) -> BatchMinimum {
    let wlo = (x0 - span).max(lo);
    let whi = (x0 + span).min(hi);
    let mut center = x0.clamp(wlo, whi);
    let mut hw = half_width.max(tol);
    let mut best = (center, f64::INFINITY);
    let mut batches = 0usize;
    let mut pinned = true;
    while batches < max_batches {
        let ra = (center - hw).max(wlo);
        let rb = (center + hw).min(whi);
        let (mut a, mut b) = (ra, rb);
        // Best evaluated triple (evenly spaced) for the vertex polish.
        let mut triple: Option<([f64; 3], [f64; 3])> = None;
        // −1/+1 when the round's first batch is strictly monotone: the
        // minimum lies beyond that window edge, so skip the bracketing
        // batches entirely and go straight to re-centre-and-widen.
        let mut fled = 0i32;
        while batches < max_batches && b - a > tol {
            let step = (b - a) / 5.0;
            let xs = [a + step, a + 2.0 * step, a + 3.0 * step, a + 4.0 * step];
            let fs = f(xs);
            batches += 1;
            let mut k = 0usize;
            for i in 0..4 {
                if fs[i] < fs[k] {
                    k = i;
                }
                if fs[i] < best.1 {
                    best = (xs[i], fs[i]);
                }
            }
            if a == ra && b == rb {
                // Strictly monotone first batch whose slope is *not*
                // collapsing toward the downhill edge: the minimum lies
                // beyond the window, so skip the bracketing batches and
                // flee. A collapsing slope (last gap under half the
                // first) means the minimum is at or just inside the
                // edge — the ordinary k-shrink arms bracket that case
                // soundly, so no flee.
                let d = [fs[1] - fs[0], fs[2] - fs[1], fs[3] - fs[2]];
                if d[0] > 0.0 && d[1] > 0.0 && d[2] > 0.0 && d[0] >= 0.5 * d[2] && ra > wlo {
                    fled = -1;
                    break;
                }
                if d[0] < 0.0 && d[1] < 0.0 && d[2] < 0.0 && -d[2] >= -0.5 * d[0] && rb < whi {
                    fled = 1;
                    break;
                }
            }
            let j = k.clamp(1, 2);
            triple = Some(([xs[j - 1], xs[j], xs[j + 1]], [fs[j - 1], fs[j], fs[j + 1]]));
            if k == 0 || k == 3 {
                // Best at a bracket-adjacent probe: slide toward that
                // edge (×0.4 shrink), keeping the edge itself.
                a = if k == 0 { a } else { xs[2] };
                b = if k == 3 { b } else { xs[1] };
            } else {
                // Interior best: when the local triple is convex, shrink
                // straight onto its parabola vertex (±0.35·step, a ×0.14
                // contraction per batch — this is what gets a good warm
                // hint certified in 2–3 batches). A vertex mistake is
                // self-correcting: the next batch's best lands at the
                // shrunken window's edge and the k∈{0,3} arm slides back
                // out, still inside this round's fixed window.
                let denom = fs[k - 1] - 2.0 * fs[k] + fs[k + 1];
                if denom > 0.0 {
                    let v =
                        xs[k] + (0.5 * step * (fs[k - 1] - fs[k + 1]) / denom).clamp(-step, step);
                    a = (v - 0.35 * step).max(xs[k - 1]);
                    b = (v + 0.35 * step).min(xs[k + 1]);
                } else {
                    a = xs[k - 1];
                    b = xs[k + 1];
                }
            }
        }
        if fled != 0 {
            // The flee only fires toward a widenable edge: chase it.
            center = if fled < 0 { ra } else { rb };
            hw *= 4.0;
            continue;
        }
        if b - a > tol {
            // Batch budget exhausted before the round converged: the
            // verdict is uncertified, so report escape (`pinned` is still
            // true) and let the caller run its full scalar search.
            break;
        }
        let edge_margin = 2.0 * tol;
        let pinned_left = best.0 - ra <= edge_margin && ra > wlo;
        let pinned_right = rb - best.0 <= edge_margin && rb < whi;
        if pinned_left || pinned_right {
            // Converged at a round edge that is not yet the trust
            // boundary: the minimum may lie outside the round window.
            // Re-centre on the pinned edge and widen.
            center = best.0;
            hw *= 4.0;
            continue;
        }
        pinned = best.0 - wlo <= edge_margin || whi - best.0 <= edge_margin;
        if !pinned {
            // Certified interior convergence: return the parabola vertex
            // of the final evaluated triple. The vertex is not evaluated
            // — on the sub-`tol` window it is a strictly better abscissa
            // estimate than any probe, and spending a batch confirming
            // it would only re-measure the plateau. `f` stays the best
            // *evaluated* objective.
            if let Some(([xl, xc, _xr], [fl, fc, fr])) = triple {
                let h = xc - xl;
                let denom = fl - 2.0 * fc + fr;
                if denom > 0.0 && h > 0.0 {
                    let v = xc + (0.5 * h * (fl - fr) / denom).clamp(-h, h);
                    best.0 = v.clamp(wlo, whi);
                }
            }
        }
        break;
    }
    let escaped = pinned || (best.0 - x0).abs() > span - 0.05;
    BatchMinimum {
        x: best.0,
        f: best.1,
        batches,
        escaped,
    }
}

/// Width below which the quintile bracket is trusted to be locally
/// near-quadratic, enabling the parabola-vertex shrink. Above it only the
/// neighbour shrink runs — a wide window's parabola can model the wrong
/// scale of the objective and discard the bracket that holds the minimum.
const BATCH_PARABOLA_WIDTH: f64 = 0.5;

/// Full-bracket lane-batched minimizer: the batched counterpart of
/// [`minimize_bounded`] for hintless searches over `[lo, hi]`.
///
/// Evaluates the window's 4 interior quintile points per batch and
/// shrinks to the neighbours of the best probe — the same bracket-keeping
/// update as golden section for unimodal objectives, retiring 4 probes
/// per objective call instead of 1. Once the window is narrower than
/// [`BATCH_PARABOLA_WIDTH`] the shrink jumps onto the local parabola
/// vertex (×0.14 per batch), and the converged bracket returns its
/// (unevaluated) vertex, well inside `tol`. `escaped` reports a window still
/// wider than `tol` at the batch budget — callers fall back to their
/// scalar search, as with [`minimize_batched_near`].
pub fn minimize_batched<F: FnMut([f64; 4]) -> [f64; 4]>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_batches: usize,
) -> BatchMinimum {
    let (mut a, mut b) = (lo, hi);
    let mut best = (0.5 * (lo + hi), f64::INFINITY);
    let mut batches = 0usize;
    let mut triple: Option<([f64; 3], [f64; 3])> = None;
    while batches < max_batches && b - a > tol {
        let step = (b - a) / 5.0;
        let xs = [a + step, a + 2.0 * step, a + 3.0 * step, a + 4.0 * step];
        let fs = f(xs);
        batches += 1;
        let mut k = 0usize;
        for i in 0..4 {
            if fs[i] < fs[k] {
                k = i;
            }
            if fs[i] < best.1 {
                best = (xs[i], fs[i]);
            }
        }
        let j = k.clamp(1, 2);
        triple = Some(([xs[j - 1], xs[j], xs[j + 1]], [fs[j - 1], fs[j], fs[j + 1]]));
        if k == 0 || k == 3 {
            a = if k == 0 { a } else { xs[2] };
            b = if k == 3 { b } else { xs[1] };
        } else if b - a < BATCH_PARABOLA_WIDTH {
            let denom = fs[k - 1] - 2.0 * fs[k] + fs[k + 1];
            if denom > 0.0 {
                let v = xs[k] + (0.5 * step * (fs[k - 1] - fs[k + 1]) / denom).clamp(-step, step);
                a = (v - 0.35 * step).max(xs[k - 1]);
                b = (v + 0.35 * step).min(xs[k + 1]);
            } else {
                a = xs[k - 1];
                b = xs[k + 1];
            }
        } else {
            a = xs[k - 1];
            b = xs[k + 1];
        }
    }
    let escaped = b - a > tol || !best.1.is_finite();
    if !escaped {
        // Same unevaluated vertex refinement as `minimize_batched_near`.
        if let Some(([xl, xc, _xr], [fl, fc, fr])) = triple {
            let h = xc - xl;
            let denom = fl - 2.0 * fc + fr;
            if denom > 0.0 && h > 0.0 {
                let v = xc + (0.5 * h * (fl - fr) / denom).clamp(-h, h);
                best.0 = v.clamp(lo, hi);
            }
        }
    }
    BatchMinimum {
        x: best.0,
        f: best.1,
        batches,
        escaped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn spi_refine_polishes_parabola() {
        let f = |x: f64| (x - 2.5) * (x - 2.5) + 1.0;
        let m = spi_refine(f, 2.3, 0.25, 20);
        assert!(approx_eq(m.x, 2.5, 1e-8, 1e-8), "x={}", m.x);
        assert!(m.f <= f(2.3));
    }

    #[test]
    fn spi_refine_walks_downhill_to_basin() {
        // Start outside the quadratic region of exp-shaped objective.
        let f = |x: f64| (x - 1.0).powi(2) + 0.05 * (x - 1.0).powi(3);
        let m = spi_refine(f, 2.0, 0.5, 25);
        assert!(approx_eq(m.x, 1.0, 1e-6, 1e-6), "x={}", m.x);
    }

    #[test]
    fn spi_refine_never_worse_than_start() {
        // Pathological non-convex start: result must not regress.
        let f = |x: f64| x.sin() * 5.0 + x * x * 0.01;
        let m = spi_refine(f, 4.0, 0.3, 20);
        assert!(m.f <= f(4.0) + 1e-12);
    }

    #[test]
    fn spi_refine_agrees_from_different_starts() {
        // The property the T_opt warm start relies on: two starts inside
        // the same basin converge to the same floor-limited vertex.
        let f = |x: f64| ((x - 3.0).cosh()).ln() + 0.1 * x;
        let a = spi_refine(f, 2.6, 0.3, 25);
        let b = spi_refine(f, 3.3, 0.02, 25);
        assert!(
            (a.x - b.x).abs() < 1e-8,
            "starts disagree: {} vs {}",
            a.x,
            b.x
        );
    }

    #[test]
    fn bracket_simple_parabola() {
        let br = bracket_minimum(|x| (x - 3.0) * (x - 3.0), 0.0, 1.0).unwrap();
        assert!(br.a < br.b && br.b < br.c);
        assert!(
            br.a <= 3.0 && 3.0 <= br.c,
            "bracket {br:?} should contain 3"
        );
    }

    #[test]
    fn bracket_monotone_fails() {
        // Strictly decreasing on the whole line: no bracket exists.
        assert!(bracket_minimum(|x| -x, 0.0, 1.0).is_err());
    }

    #[test]
    fn golden_parabola() {
        let m = minimize_golden(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 1.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 2.5, 1e-6, 1e-6), "x={}", m.x);
        assert!(approx_eq(m.f, 1.0, 1e-9, 1e-9));
    }

    #[test]
    fn brent_parabola() {
        let m = minimize_brent(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 1.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 2.5, 1e-7, 1e-7));
    }

    #[test]
    fn brent_beats_golden_on_evals() {
        let f = |x: f64| x.powi(4) - 3.0 * x.powi(2) + x;
        let g = minimize_golden(f, 0.2, 0.5, 1e-9).unwrap();
        let b = minimize_brent(f, 0.2, 0.5, 1e-9).unwrap();
        assert!(
            approx_eq(g.x, b.x, 1e-4, 1e-4),
            "golden {} vs brent {}",
            g.x,
            b.x
        );
        assert!(
            b.evaluations < g.evaluations,
            "brent {} !< golden {}",
            b.evaluations,
            g.evaluations
        );
    }

    #[test]
    fn golden_nonsmooth_objective() {
        // |x − 1.3| + 0.1: kink at the minimum; golden section handles it.
        let m = minimize_golden(|x: f64| (x - 1.3).abs() + 0.1, 0.0, 0.4, 1e-10).unwrap();
        assert!(approx_eq(m.x, 1.3, 1e-6, 1e-6), "x={}", m.x);
    }

    #[test]
    fn overhead_ratio_shape() {
        // A Γ/T-like objective: (c + t + k·t²)/t has minimum at t = √(c/k).
        let c = 100.0;
        let k = 0.001;
        let f = move |t: f64| (c + t + k * t * t) / t;
        let m = minimize_golden(f, 10.0, 50.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, (c / k).sqrt(), 1e-5, 1e-3), "x={}", m.x);
    }

    #[test]
    fn bounded_interior_minimum() {
        let m = minimize_bounded(|x| (x - 2.0) * (x - 2.0), 0.0, 10.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 2.0, 1e-6, 1e-6));
    }

    #[test]
    fn bounded_monotone_clamps_to_edge() {
        // Decreasing on [0, 5]: minimum at the right edge.
        let m = minimize_bounded(|x| -x, 0.0, 5.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 5.0, 1e-9, 1e-9), "x={}", m.x);
        // Increasing: minimum at the left edge.
        let m = minimize_bounded(|x| x, 0.0, 5.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 0.0, 1e-9, 1e-9), "x={}", m.x);
    }

    #[test]
    fn bounded_invalid_interval() {
        assert!(minimize_bounded(|x| x, 5.0, 5.0, 1e-8).is_err());
        assert!(minimize_bounded(|x| x, 6.0, 5.0, 1e-8).is_err());
    }

    #[test]
    fn golden_rejects_bad_bracket() {
        let br = Bracket {
            a: 1.0,
            b: 0.5,
            c: 2.0,
            fb: 0.0,
        };
        assert!(golden_section(|x| x * x, br, 1e-8).is_err());
    }

    fn quad_x4(c: f64) -> impl FnMut([f64; 4]) -> [f64; 4] {
        move |xs: [f64; 4]| xs.map(|x| (x - c) * (x - c))
    }

    #[test]
    fn batched_near_refines_quadratic() {
        let m = minimize_batched_near(quad_x4(2.0), 1.97, 0.045, -10.0, 10.0, 1.38, 6e-4, 16);
        assert!(!m.escaped);
        assert!((m.x - 2.0).abs() < 1e-4, "x={} batches={}", m.x, m.batches);
        assert!(m.batches <= 10, "batches={}", m.batches);
    }

    #[test]
    fn batched_near_expands_to_reach_minimum() {
        // Minimum well outside the initial ±0.045 window but inside the
        // trust span: bracket expansion must walk there.
        let m = minimize_batched_near(quad_x4(2.6), 2.0, 0.045, -10.0, 10.0, 1.38, 6e-4, 24);
        assert!(!m.escaped, "x={}", m.x);
        assert!((m.x - 2.6).abs() < 1e-3, "x={} batches={}", m.x, m.batches);
    }

    #[test]
    fn batched_near_reports_escape_beyond_span() {
        // Minimum outside the trust span: search pins to the window edge
        // and reports escape so callers fall back to the full search.
        let m = minimize_batched_near(quad_x4(5.0), 2.0, 0.045, -10.0, 10.0, 1.0, 6e-4, 24);
        assert!(m.escaped, "x={}", m.x);
    }

    #[test]
    fn batched_near_respects_hard_bounds() {
        // Monotone decreasing toward hi = 3: clamps at the bound.
        let mut f = |xs: [f64; 4]| xs.map(|x| -x);
        let m = minimize_batched_near(&mut f, 2.9, 0.045, -3.0, 3.0, 1.38, 6e-4, 24);
        assert!(m.x <= 3.0 && m.x > 2.99, "x={}", m.x);
    }

    #[test]
    fn batched_near_good_hint_converges_in_few_batches() {
        // A hint within the initial window must certify in ≤4 batches —
        // the budget the policy builder's per-probe cost model assumes.
        let mut f = |xs: [f64; 4]| xs.map(|x: f64| (x - 2.0).powi(2));
        let m = minimize_batched_near(&mut f, 1.99, 0.02, 0.0, 10.0, 1.38, 6e-4, 12);
        assert!(!m.escaped);
        assert!((m.x - 2.0).abs() < 1e-4, "x={}", m.x);
        assert!(m.batches <= 4, "batches={}", m.batches);
    }

    #[test]
    fn batched_near_monotone_round_widens_quickly() {
        // Minimum one full span away: the strictly-monotone first batch
        // of each round must re-centre immediately instead of spending a
        // whole round bracketing air.
        let mut f = |xs: [f64; 4]| xs.map(|x: f64| (x - 3.2).powi(2));
        let m = minimize_batched_near(&mut f, 2.0, 0.02, 0.0, 10.0, 1.38, 6e-4, 12);
        assert!(!m.escaped, "batches={}", m.batches);
        assert!((m.x - 3.2).abs() < 1e-3, "x={}", m.x);
        assert!(m.batches <= 10, "batches={}", m.batches);
    }

    #[test]
    fn batched_full_refines_quadratic_over_wide_window() {
        let mut f = |xs: [f64; 4]| xs.map(|x: f64| (x - 7.25).powi(2));
        let m = minimize_batched(&mut f, -11.0, 12.0, 6e-4, 16);
        assert!(!m.escaped);
        assert!((m.x - 7.25).abs() < 1e-4, "x={}", m.x);
        assert!(m.batches <= 16, "batches={}", m.batches);
    }

    #[test]
    fn batched_full_handles_edge_minimum() {
        // Monotone decreasing: the minimum sits at the right bound.
        let mut f = |xs: [f64; 4]| xs.map(|x: f64| -x);
        let m = minimize_batched(&mut f, 0.0, 23.0, 6e-4, 16);
        assert!(m.x > 22.9, "x={}", m.x);
    }

    #[test]
    fn batched_full_reports_escape_on_budget() {
        let mut f = |xs: [f64; 4]| xs.map(|x: f64| (x - 7.25).powi(2));
        let m = minimize_batched(&mut f, -11.0, 12.0, 6e-4, 2);
        assert!(m.escaped);
    }
}
