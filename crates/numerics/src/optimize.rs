//! One-dimensional minimization: bracketing, golden-section search, and
//! Brent's parabolic-interpolation method.
//!
//! The paper minimizes the overhead ratio `Γ(T)/T` with "the Golden
//! Section Search method as implemented in Numerical Recipes"; we provide
//! that algorithm (with the same bracketing contract as NR's
//! `mnbrak`/`golden`) plus Brent's method as a faster drop-in used by the
//! schedule optimizer's ablation benches.

use crate::{NumericsError, Result};

/// Golden ratio constants: `R = (√5 − 1)/2 ≈ 0.618`, `C = 1 − R`.
const GOLD_R: f64 = 0.618_033_988_749_894_8;
const GOLD_C: f64 = 1.0 - GOLD_R;

/// Default fractional precision for the minimizers. Below ~√ε golden
/// section cannot distinguish function values, so this is the floor NR
/// recommends.
pub const DEFAULT_TOL: f64 = 3e-8;

/// Result of a 1-D minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Abscissa of the located minimum.
    pub x: f64,
    /// Function value at [`Minimum::x`].
    pub f: f64,
    /// Number of function evaluations consumed.
    pub evaluations: usize,
}

/// A triple `(a, b, c)` with `a < b < c` and `f(b) < f(a)`, `f(b) < f(c)`:
/// the precondition for golden-section and Brent minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Left edge.
    pub a: f64,
    /// Interior point with the smallest function value seen so far.
    pub b: f64,
    /// Right edge.
    pub c: f64,
    /// `f(b)`.
    pub fb: f64,
}

/// Expand downhill from `(a, b)` until a bracketing triple is found
/// (Numerical Recipes `mnbrak`, with golden-ratio expansion and parabolic
/// extrapolation steps).
///
/// # Errors
/// [`NumericsError::NoConvergence`] if no bracket is found within 100
/// expansions (monotone function on the search ray).
pub fn bracket_minimum<F: Fn(f64) -> f64>(f: F, a0: f64, b0: f64) -> Result<Bracket> {
    const GLIMIT: f64 = 100.0;
    const TINY: f64 = 1e-20;
    const MAX_EXPAND: usize = 100;

    let (mut ax, mut bx) = (a0, b0);
    let mut fa = f(ax);
    let mut fb = f(bx);
    if fb > fa {
        std::mem::swap(&mut ax, &mut bx);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut cx = bx + (1.0 + GOLD_R) * (bx - ax);
    let mut fc = f(cx);
    let mut iters = 0usize;
    while fb >= fc {
        iters += 1;
        if iters > MAX_EXPAND {
            return Err(NumericsError::NoConvergence {
                routine: "bracket_minimum",
                iterations: MAX_EXPAND,
            });
        }
        // Parabolic extrapolation from a, b, c.
        let r = (bx - ax) * (fb - fc);
        let q = (bx - cx) * (fb - fa);
        let denom = 2.0 * (q - r).abs().max(TINY) * (q - r).signum();
        let mut u = bx - ((bx - cx) * q - (bx - ax) * r) / denom;
        let ulim = bx + GLIMIT * (cx - bx);
        if (bx - u) * (u - cx) > 0.0 {
            // u between b and c
            let fu = f(u);
            if fu < fc {
                return Ok(order_bracket(bx, u, cx, fu));
            } else if fu > fb {
                return Ok(order_bracket(ax, bx, u, fb));
            }
            u = cx + (1.0 + GOLD_R) * (cx - bx);
        } else if (cx - u) * (u - ulim) > 0.0 {
            // u between c and limit
            let fu_probe = f(u);
            if fu_probe < fc {
                let unew = u + (1.0 + GOLD_R) * (u - cx);
                ax = cx;
                fa = fc;
                bx = u;
                fb = fu_probe;
                cx = unew;
                fc = f(cx);
                continue;
            }
            ax = bx;
            fa = fb;
            bx = cx;
            fb = fc;
            cx = u;
            fc = fu_probe;
            continue;
        } else if (u - ulim) * (ulim - cx) >= 0.0 {
            u = ulim;
        } else {
            u = cx + (1.0 + GOLD_R) * (cx - bx);
        }
        let fu = f(u);
        ax = bx;
        fa = fb;
        bx = cx;
        fb = fc;
        cx = u;
        fc = fu;
    }
    Ok(order_bracket(ax, bx, cx, fb))
}

fn order_bracket(a: f64, b: f64, c: f64, fb: f64) -> Bracket {
    if a <= c {
        Bracket { a, b, c, fb }
    } else {
        Bracket { a: c, b, c: a, fb }
    }
}

/// Golden-section search for the minimum of `f` inside `bracket`, to
/// fractional precision `tol` (Numerical Recipes `golden`).
pub fn golden_section<F: Fn(f64) -> f64>(f: F, bracket: Bracket, tol: f64) -> Result<Minimum> {
    let Bracket { a, b, c, .. } = bracket;
    if !(a < b && b < c) {
        return Err(NumericsError::InvalidBracket { lo: a, hi: c });
    }
    let tol = tol.max(f64::EPSILON.sqrt());
    let mut x0 = a;
    let mut x3 = c;
    let (mut x1, mut x2);
    if (c - b).abs() > (b - a).abs() {
        x1 = b;
        x2 = b + GOLD_C * (c - b);
    } else {
        x2 = b;
        x1 = b - GOLD_C * (b - a);
    }
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2usize;
    const MAX_ITER: usize = 200;
    let mut iters = 0usize;
    while (x3 - x0).abs() > tol * (x1.abs() + x2.abs()).max(1e-30) {
        iters += 1;
        if iters > MAX_ITER {
            return Err(NumericsError::NoConvergence {
                routine: "golden_section",
                iterations: MAX_ITER,
            });
        }
        if f2 < f1 {
            x0 = x1;
            x1 = x2;
            x2 = GOLD_R * x2 + GOLD_C * x3;
            f1 = f2;
            f2 = f(x2);
        } else {
            x3 = x2;
            x2 = x1;
            x1 = GOLD_R * x1 + GOLD_C * x0;
            f2 = f1;
            f1 = f(x1);
        }
        evals += 1;
    }
    Ok(if f1 < f2 {
        Minimum {
            x: x1,
            f: f1,
            evaluations: evals,
        }
    } else {
        Minimum {
            x: x2,
            f: f2,
            evaluations: evals,
        }
    })
}

/// Brent's method: golden-section with parabolic acceleration (Numerical
/// Recipes `brent`). Typically converges in a third of the evaluations of
/// pure golden section for smooth objectives like `Γ(T)/T`.
pub fn brent_min<F: Fn(f64) -> f64>(f: F, bracket: Bracket, tol: f64) -> Result<Minimum> {
    const ITMAX: usize = 200;
    const ZEPS: f64 = 1e-18;
    let Bracket {
        a: ba,
        b: bb,
        c: bc,
        ..
    } = bracket;
    if !(ba < bb && bb < bc) {
        return Err(NumericsError::InvalidBracket { lo: ba, hi: bc });
    }
    let tol = tol.max(f64::EPSILON.sqrt());
    let (mut a, mut b) = (ba, bc);
    let mut x = bb;
    let mut w = bb;
    let mut v = bb;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut e: f64 = 0.0;
    let mut d: f64 = 0.0;
    // One evaluation per iteration plus the initial f(x); tracked for the
    // golden-vs-Brent ablation bench.
    let mut evals = 1usize;
    #[allow(clippy::explicit_counter_loop)]
    for _ in 0..ITMAX {
        let xm = 0.5 * (a + b);
        let tol1 = tol * x.abs() + ZEPS;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (b - a) {
            return Ok(Minimum {
                x,
                f: fx,
                evaluations: evals,
            });
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Trial parabolic fit through x, v, w.
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = e;
            e = d;
            if p.abs() < (0.5 * q * etemp).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = tol1.copysign(xm - x);
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { a - x } else { b - x };
            d = GOLD_C * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else {
            x + tol1.copysign(d)
        };
        let fu = f(u);
        evals += 1;
        if fu <= fx {
            if u >= x {
                a = x;
            } else {
                b = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "brent_min",
        iterations: ITMAX,
    })
}

/// Convenience: bracket from `(a0, b0)` then minimize with golden section.
pub fn minimize_golden<F: Fn(f64) -> f64 + Copy>(
    f: F,
    a0: f64,
    b0: f64,
    tol: f64,
) -> Result<Minimum> {
    let br = bracket_minimum(f, a0, b0)?;
    golden_section(f, br, tol)
}

/// Convenience: bracket from `(a0, b0)` then minimize with Brent.
pub fn minimize_brent<F: Fn(f64) -> f64 + Copy>(
    f: F,
    a0: f64,
    b0: f64,
    tol: f64,
) -> Result<Minimum> {
    let br = bracket_minimum(f, a0, b0)?;
    brent_min(f, br, tol)
}

/// Minimize over a *bounded* interval `[lo, hi]` by golden section without
/// requiring an interior bracket (clamps to the boundary minimum if the
/// function is monotone on the interval). Used when `T` must respect
/// scheduler-imposed bounds.
pub fn minimize_bounded<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<Minimum> {
    let valid = lo < hi && lo.is_finite() && hi.is_finite();
    if !valid {
        return Err(NumericsError::InvalidBracket { lo, hi });
    }
    let tol = tol.max(f64::EPSILON.sqrt());
    let mut a = lo;
    let mut b = hi;
    let mut x1 = a + GOLD_C * (b - a);
    let mut x2 = b - GOLD_C * (b - a);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2usize;
    const MAX_ITER: usize = 300;
    for _ in 0..MAX_ITER {
        if (b - a).abs() <= tol * (x1.abs() + x2.abs()).max(1.0) {
            let (x, fx) = if f1 < f2 { (x1, f1) } else { (x2, f2) };
            // Also compare against the boundary values in case of
            // monotonicity toward an edge.
            let fl = f(lo);
            let fh = f(hi);
            evals += 2;
            let mut best = Minimum {
                x,
                f: fx,
                evaluations: evals,
            };
            if fl < best.f {
                best = Minimum {
                    x: lo,
                    f: fl,
                    evaluations: evals,
                };
            }
            if fh < best.f {
                best = Minimum {
                    x: hi,
                    f: fh,
                    evaluations: evals,
                };
            }
            return Ok(best);
        }
        if f1 < f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = a + GOLD_C * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = b - GOLD_C * (b - a);
            f2 = f(x2);
        }
        evals += 1;
    }
    Err(NumericsError::NoConvergence {
        routine: "minimize_bounded",
        iterations: MAX_ITER,
    })
}

/// Step-size floor for [`spi_refine`]: below this the parabola vertex is
/// dominated by floating-point noise in `f` rather than by curvature, so
/// shrinking further cannot improve the estimate (`h* ~ ε^{1/3}`).
pub const SPI_H_FLOOR: f64 = 1e-5;

/// Refine a nearby local minimum by successive parabolic interpolation.
///
/// Starting from `x0` (assumed within the minimum's basin), fit a
/// parabola through `x − h`, `x`, `x + h`, jump to its vertex, and shrink
/// `h` toward [`SPI_H_FLOOR`]. Where the three points are not locally
/// convex the step degrades to a downhill move of size `h`, so the
/// routine still makes progress from a start on a monotone stretch.
///
/// Unlike the bracketing minimizers this never fails: it returns the best
/// point seen, which is `x0` itself in the worst case. The schedule
/// optimizer uses it as the *common* final stage of both the cold
/// (full-bracket) and warm-started `T_opt` searches; because both finish
/// with the same floor-limited polish they agree to ~`1e-10` in `x`,
/// which is what lets warm-started sweeps reproduce cold-sweep results.
pub fn spi_refine<F: Fn(f64) -> f64>(f: F, x0: f64, h0: f64, max_steps: usize) -> Minimum {
    let mut x = x0;
    let mut fx = f(x);
    let mut evals = 1usize;
    let mut h = h0.max(SPI_H_FLOOR);
    for _ in 0..max_steps {
        let (xl, xr) = (x - h, x + h);
        let (fl, fr) = (f(xl), f(xr));
        evals += 2;
        let denom = fl - 2.0 * fx + fr;
        let dx = if denom > 0.0 {
            (0.5 * h * (fl - fr) / denom).clamp(-h, h)
        } else if fl < fr {
            -h
        } else {
            h
        };
        let xn = x + dx;
        let fn_ = f(xn);
        evals += 1;
        // Keep the best of the four points examined this step.
        let mut best = (x, fx);
        for cand in [(xl, fl), (xr, fr), (xn, fn_)] {
            if cand.1 < best.1 {
                best = cand;
            }
        }
        (x, fx) = best;
        if h <= SPI_H_FLOOR {
            break;
        }
        // Near a quadratic minimum |dx| contracts quadratically; the 0.1
        // cap keeps progress on stubborn (non-convex-at-scale) stretches.
        h = (dx.abs() * 2.0).max(h * 0.025).max(SPI_H_FLOOR);
    }
    Minimum {
        x,
        f: fx,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn spi_refine_polishes_parabola() {
        let f = |x: f64| (x - 2.5) * (x - 2.5) + 1.0;
        let m = spi_refine(f, 2.3, 0.25, 20);
        assert!(approx_eq(m.x, 2.5, 1e-8, 1e-8), "x={}", m.x);
        assert!(m.f <= f(2.3));
    }

    #[test]
    fn spi_refine_walks_downhill_to_basin() {
        // Start outside the quadratic region of exp-shaped objective.
        let f = |x: f64| (x - 1.0).powi(2) + 0.05 * (x - 1.0).powi(3);
        let m = spi_refine(f, 2.0, 0.5, 25);
        assert!(approx_eq(m.x, 1.0, 1e-6, 1e-6), "x={}", m.x);
    }

    #[test]
    fn spi_refine_never_worse_than_start() {
        // Pathological non-convex start: result must not regress.
        let f = |x: f64| x.sin() * 5.0 + x * x * 0.01;
        let m = spi_refine(f, 4.0, 0.3, 20);
        assert!(m.f <= f(4.0) + 1e-12);
    }

    #[test]
    fn spi_refine_agrees_from_different_starts() {
        // The property the T_opt warm start relies on: two starts inside
        // the same basin converge to the same floor-limited vertex.
        let f = |x: f64| ((x - 3.0).cosh()).ln() + 0.1 * x;
        let a = spi_refine(f, 2.6, 0.3, 25);
        let b = spi_refine(f, 3.3, 0.02, 25);
        assert!(
            (a.x - b.x).abs() < 1e-8,
            "starts disagree: {} vs {}",
            a.x,
            b.x
        );
    }

    #[test]
    fn bracket_simple_parabola() {
        let br = bracket_minimum(|x| (x - 3.0) * (x - 3.0), 0.0, 1.0).unwrap();
        assert!(br.a < br.b && br.b < br.c);
        assert!(
            br.a <= 3.0 && 3.0 <= br.c,
            "bracket {br:?} should contain 3"
        );
    }

    #[test]
    fn bracket_monotone_fails() {
        // Strictly decreasing on the whole line: no bracket exists.
        assert!(bracket_minimum(|x| -x, 0.0, 1.0).is_err());
    }

    #[test]
    fn golden_parabola() {
        let m = minimize_golden(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 1.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 2.5, 1e-6, 1e-6), "x={}", m.x);
        assert!(approx_eq(m.f, 1.0, 1e-9, 1e-9));
    }

    #[test]
    fn brent_parabola() {
        let m = minimize_brent(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 1.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 2.5, 1e-7, 1e-7));
    }

    #[test]
    fn brent_beats_golden_on_evals() {
        let f = |x: f64| x.powi(4) - 3.0 * x.powi(2) + x;
        let g = minimize_golden(f, 0.2, 0.5, 1e-9).unwrap();
        let b = minimize_brent(f, 0.2, 0.5, 1e-9).unwrap();
        assert!(
            approx_eq(g.x, b.x, 1e-4, 1e-4),
            "golden {} vs brent {}",
            g.x,
            b.x
        );
        assert!(
            b.evaluations < g.evaluations,
            "brent {} !< golden {}",
            b.evaluations,
            g.evaluations
        );
    }

    #[test]
    fn golden_nonsmooth_objective() {
        // |x − 1.3| + 0.1: kink at the minimum; golden section handles it.
        let m = minimize_golden(|x: f64| (x - 1.3).abs() + 0.1, 0.0, 0.4, 1e-10).unwrap();
        assert!(approx_eq(m.x, 1.3, 1e-6, 1e-6), "x={}", m.x);
    }

    #[test]
    fn overhead_ratio_shape() {
        // A Γ/T-like objective: (c + t + k·t²)/t has minimum at t = √(c/k).
        let c = 100.0;
        let k = 0.001;
        let f = move |t: f64| (c + t + k * t * t) / t;
        let m = minimize_golden(f, 10.0, 50.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, (c / k).sqrt(), 1e-5, 1e-3), "x={}", m.x);
    }

    #[test]
    fn bounded_interior_minimum() {
        let m = minimize_bounded(|x| (x - 2.0) * (x - 2.0), 0.0, 10.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 2.0, 1e-6, 1e-6));
    }

    #[test]
    fn bounded_monotone_clamps_to_edge() {
        // Decreasing on [0, 5]: minimum at the right edge.
        let m = minimize_bounded(|x| -x, 0.0, 5.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 5.0, 1e-9, 1e-9), "x={}", m.x);
        // Increasing: minimum at the left edge.
        let m = minimize_bounded(|x| x, 0.0, 5.0, 1e-10).unwrap();
        assert!(approx_eq(m.x, 0.0, 1e-9, 1e-9), "x={}", m.x);
    }

    #[test]
    fn bounded_invalid_interval() {
        assert!(minimize_bounded(|x| x, 5.0, 5.0, 1e-8).is_err());
        assert!(minimize_bounded(|x| x, 6.0, 5.0, 1e-8).is_err());
    }

    #[test]
    fn golden_rejects_bad_bracket() {
        let br = Bracket {
            a: 1.0,
            b: 0.5,
            c: 2.0,
            fb: 0.0,
        };
        assert!(golden_section(|x| x * x, br, 1e-8).is_err());
    }
}
