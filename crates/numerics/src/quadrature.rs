//! One-dimensional numerical integration.
//!
//! The Markov-model costs need truncated means `∫₀^a F(x) dx` of
//! availability CDFs that have no closed antiderivative (Weibull with
//! non-integer shape, hyperexponential mixtures conditioned on machine
//! age). Adaptive Simpson handles the strongly non-uniform curvature near
//! zero that heavy-tailed CDFs exhibit; fixed-order Gauss–Legendre is the
//! fast path for smooth integrands in the optimizer's inner loop.

use crate::{NumericsError, Result};

/// Default tolerance for [`adaptive_simpson`].
pub const DEFAULT_TOL: f64 = 1e-10;

/// Maximum recursion depth for adaptive Simpson before reporting failure.
const MAX_DEPTH: u32 = 60;

/// Integrate `f` over `[a, b]` with adaptive Simpson's rule to absolute
/// tolerance `tol`.
///
/// # Errors
/// * [`NumericsError::InvalidBracket`] if `a > b` or either bound is
///   non-finite.
/// * [`NumericsError::NoConvergence`] if the recursion exceeds depth 60
///   (an integrand that is not locally smooth anywhere).
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() || a > b {
        return Err(NumericsError::InvalidBracket { lo: a, hi: b });
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    simpson_recurse(
        &f,
        a,
        b,
        fa,
        fm,
        fb,
        whole,
        tol.max(f64::EPSILON),
        MAX_DEPTH,
    )
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> Result<f64> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    // Accept the Richardson-extrapolated estimate when the local error is
    // within tolerance, the panel is at floating-point resolution, or the
    // depth budget is exhausted (integrable endpoint singularities — e.g.
    // Weibull CDFs with shape < 1 — refine forever but the residual mass
    // in a 2⁻⁶⁰-wide panel is negligible).
    if delta.abs() <= 15.0 * tol || (b - a) < f64::EPSILON * (a.abs() + b.abs()) || depth == 0 {
        return Ok(left + right + delta / 15.0);
    }
    let lv = simpson_recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)?;
    let rv = simpson_recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)?;
    Ok(lv + rv)
}

/// Abscissae (positive half) and weights for 20-point Gauss–Legendre on
/// [-1, 1]. Symmetric: each entry is used at ±x.
const GL20_X: [f64; 10] = [
    0.076_526_521_133_497_33,
    0.227_785_851_141_645_08,
    0.373_706_088_715_419_56,
    0.510_867_001_950_827_1,
    0.636_053_680_726_515_1,
    0.746_331_906_460_150_8,
    0.839_116_971_822_218_8,
    0.912_234_428_251_326,
    0.963_971_927_277_913_8,
    0.993_128_599_185_094_9,
];
const GL20_W: [f64; 10] = [
    0.152_753_387_130_725_85,
    0.149_172_986_472_603_75,
    0.142_096_109_318_382_05,
    0.131_688_638_449_176_63,
    0.118_194_531_961_518_42,
    0.101_930_119_817_240_44,
    0.083_276_741_576_704_75,
    0.062_672_048_334_109_06,
    0.040_601_429_800_386_94,
    0.017_614_007_139_152_12,
];

/// 20-point Gauss–Legendre quadrature of `f` over `[a, b]`.
///
/// Exact for polynomials up to degree 39; excellent for smooth CDFs over
/// moderate intervals. Panics never; returns 0 for an empty interval.
pub fn gauss_legendre_20<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> f64 {
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    let mut acc = 0.0;
    for i in 0..10 {
        let dx = half * GL20_X[i];
        acc += GL20_W[i] * (f(mid + dx) + f(mid - dx));
    }
    acc * half
}

/// Composite Gauss–Legendre: split `[a, b]` into `panels` equal panels and
/// apply the 20-point rule to each. Used when the integrand has a
/// sharp feature near the origin (heavy-tailed CDFs) but is otherwise
/// smooth.
///
/// All panels share one width, so the scaled abscissa offsets
/// `half · x_i` are computed once per call (not once per panel, and not
/// re-derived from the raw `[-1, 1]` table on every panel as the
/// original `gauss_legendre_20`-per-panel formulation did).
pub fn composite_gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, panels: usize) -> f64 {
    assert!(
        panels > 0,
        "composite quadrature requires at least one panel"
    );
    let h = (b - a) / panels as f64;
    let half = 0.5 * h;
    let dx = GL20_X.map(|x| half * x);
    let mut acc = 0.0;
    for p in 0..panels {
        let mid = a + (p as f64 + 0.5) * h;
        let mut pacc = 0.0;
        for i in 0..10 {
            pacc += GL20_W[i] * (f(mid + dx[i]) + f(mid - dx[i]));
        }
        acc += pacc * half;
    }
    acc
}

/// Lane-batched [`composite_gauss_legendre`]: one shared lower bound,
/// four upper bounds, one integrand evaluated on `[f64; 4]` points at a
/// time.
///
/// Each lane gets its own panel width `h_l = (upper_l − a) / panels`,
/// and the per-lane arithmetic (panel midpoint, scaled offsets, the
/// `Σ w_i (f(mid+dx_i) + f(mid−dx_i))` accumulation, the `· half`
/// scaling) follows the scalar composite's operation order exactly — a
/// lane's result is bit-identical to the scalar call with the same
/// bounds whenever `f` is (which lets the Weibull quadrature fallback
/// integrate all four probe horizons in one sweep without perturbing
/// the frozen scalar reference). A degenerate lane (`upper_l == a`)
/// integrates to exactly 0, as the scalar does.
pub fn composite_gauss_legendre_x4<F: FnMut([f64; 4]) -> [f64; 4]>(
    mut f: F,
    a: f64,
    uppers: [f64; 4],
    panels: usize,
) -> [f64; 4] {
    assert!(
        panels > 0,
        "composite quadrature requires at least one panel"
    );
    let h = uppers.map(|u| (u - a) / panels as f64);
    let half = h.map(|hl| 0.5 * hl);
    let dx: [[f64; 4]; 10] = GL20_X.map(|x| half.map(|hl| hl * x));
    let mut acc = [0.0f64; 4];
    for p in 0..panels {
        let mid = h.map(|hl| a + (p as f64 + 0.5) * hl);
        let mut pacc = [0.0f64; 4];
        for i in 0..10 {
            let hi = f([
                mid[0] + dx[i][0],
                mid[1] + dx[i][1],
                mid[2] + dx[i][2],
                mid[3] + dx[i][3],
            ]);
            let lo = f([
                mid[0] - dx[i][0],
                mid[1] - dx[i][1],
                mid[2] - dx[i][2],
                mid[3] - dx[i][3],
            ]);
            for l in 0..4 {
                pacc[l] += GL20_W[i] * (hi[l] + lo[l]);
            }
        }
        for l in 0..4 {
            acc[l] += pacc[l] * half[l];
        }
    }
    acc
}

/// Trapezoidal rule over a uniformly sampled grid; the workhorse for
/// integrating *empirical* (tabulated) series such as recorded bandwidth.
pub fn trapezoid_uniform(values: &[f64], dx: f64) -> f64 {
    match values.len() {
        0 | 1 => 0.0,
        n => {
            let interior: f64 = values[1..n - 1].iter().sum();
            dx * (0.5 * (values[0] + values[n - 1]) + interior)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn simpson_polynomial_exact() {
        // ∫₀¹ x³ dx = 1/4 (Simpson is exact for cubics)
        let v = adaptive_simpson(|x| x * x * x, 0.0, 1.0, 1e-12).unwrap();
        assert!(approx_eq(v, 0.25, 1e-12, 1e-14));
    }

    #[test]
    fn simpson_exponential() {
        // ∫₀^5 e^{-x} dx = 1 − e^{-5}
        let v = adaptive_simpson(|x| (-x).exp(), 0.0, 5.0, 1e-12).unwrap();
        assert!(approx_eq(v, 1.0 - (-5.0f64).exp(), 1e-11, 1e-13));
    }

    #[test]
    fn simpson_sin() {
        // ∫₀^π sin = 2
        let v = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12).unwrap();
        assert!(approx_eq(v, 2.0, 1e-11, 0.0));
    }

    #[test]
    fn simpson_sharp_feature() {
        // Heavy-tailed Weibull CDF shape: steep near 0. ∫₀^10 (1 − e^{−√x}) dx.
        // Substitution u = √x: ∫ = 10 − ∫₀^10 e^{−√x} dx; with u²=x,
        // ∫₀^10 e^{−√x}dx = 2∫₀^{√10} u e^{−u} du = 2[1 − (1+√10)e^{−√10}].
        let s10 = 10.0f64.sqrt();
        let expected = 10.0 - 2.0 * (1.0 - (1.0 + s10) * (-s10).exp());
        let v = adaptive_simpson(|x: f64| 1.0 - (-x.sqrt()).exp(), 0.0, 10.0, 1e-12).unwrap();
        assert!(
            approx_eq(v, expected, 1e-9, 1e-10),
            "v={v} expected={expected}"
        );
    }

    #[test]
    fn simpson_empty_interval() {
        assert_eq!(adaptive_simpson(|x| x, 2.0, 2.0, 1e-10).unwrap(), 0.0);
    }

    #[test]
    fn simpson_invalid_bracket() {
        assert!(adaptive_simpson(|x| x, 1.0, 0.0, 1e-10).is_err());
        assert!(adaptive_simpson(|x| x, f64::NAN, 1.0, 1e-10).is_err());
    }

    #[test]
    fn gauss_legendre_polynomial() {
        // degree-19 polynomial integrated exactly
        let v = gauss_legendre_20(|x| x.powi(19) + 3.0 * x.powi(4), -1.0, 1.0);
        // odd part vanishes; ∫_{-1}^{1} 3x⁴ = 6/5
        assert!(approx_eq(v, 1.2, 1e-12, 1e-13));
    }

    #[test]
    fn gauss_legendre_interval_transform() {
        // ∫₂^7 x² dx = (343 − 8)/3
        let v = gauss_legendre_20(|x| x * x, 2.0, 7.0);
        assert!(approx_eq(v, 335.0 / 3.0, 1e-13, 0.0));
    }

    #[test]
    fn composite_matches_adaptive() {
        let f = |x: f64| (1.0 + x).ln() * (-0.3 * x).exp();
        let a = adaptive_simpson(f, 0.0, 20.0, 1e-11).unwrap();
        let c = composite_gauss_legendre(f, 0.0, 20.0, 8);
        assert!(approx_eq(a, c, 1e-9, 1e-10), "a={a} c={c}");
    }

    #[test]
    #[should_panic(expected = "at least one panel")]
    fn composite_zero_panels_panics() {
        composite_gauss_legendre(|x| x, 0.0, 1.0, 0);
    }

    #[test]
    fn composite_x4_bitwise_matches_scalar_lanes() {
        let g = |x: f64| (1.0 + x).ln() * (-0.3 * x).exp();
        let uppers = [0.5, 3.0, 20.0, 150.0];
        let lanes = composite_gauss_legendre_x4(|xs| xs.map(g), 0.0, uppers, 32);
        for l in 0..4 {
            let scalar = composite_gauss_legendre(g, 0.0, uppers[l], 32);
            assert_eq!(lanes[l].to_bits(), scalar.to_bits(), "lane {l}");
        }
    }

    #[test]
    fn composite_x4_degenerate_lane_is_zero() {
        let lanes =
            composite_gauss_legendre_x4(|xs| xs.map(|x| x * x), 2.0, [2.0, 2.0, 4.0, 8.0], 8);
        assert_eq!(lanes[0], 0.0);
        assert_eq!(lanes[1], 0.0);
        let s2 = composite_gauss_legendre(|x| x * x, 2.0, 4.0, 8);
        assert_eq!(lanes[2].to_bits(), s2.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one panel")]
    fn composite_x4_zero_panels_panics() {
        composite_gauss_legendre_x4(|xs| xs, 0.0, [1.0; 4], 0);
    }

    #[test]
    fn trapezoid_basics() {
        assert_eq!(trapezoid_uniform(&[], 1.0), 0.0);
        assert_eq!(trapezoid_uniform(&[5.0], 1.0), 0.0);
        // y = x on [0, 3] sampled at 0,1,2,3 → area 4.5
        assert!(approx_eq(
            trapezoid_uniform(&[0.0, 1.0, 2.0, 3.0], 1.0),
            4.5,
            1e-14,
            0.0
        ));
    }

    #[test]
    fn trapezoid_constant() {
        let v = trapezoid_uniform(&[2.0; 11], 0.5);
        assert!(approx_eq(v, 10.0, 1e-14, 0.0));
    }
}
