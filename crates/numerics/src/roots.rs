//! Scalar root finding: bisection, safeguarded Newton–Raphson, and Brent's
//! method.
//!
//! The Weibull maximum-likelihood shape equation and distribution quantile
//! inversions are solved here. Newton with a bisection safeguard
//! (Numerical Recipes `rtsafe`) is the default because MLE profile
//! likelihoods are smooth but can have awkward curvature for heavy tails
//! (shape « 1).

use crate::{NumericsError, Result};

/// Default absolute tolerance on the root abscissa.
pub const DEFAULT_TOL: f64 = 1e-12;

const MAX_ITER: usize = 200;

/// Bisection on `[lo, hi]`; requires a sign change.
///
/// # Errors
/// * [`NumericsError::InvalidBracket`] when `f(lo)` and `f(hi)` have the
///   same sign (and neither is zero).
pub fn bisect<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    let (mut lo, mut hi) = (lo, hi);
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() || !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(NumericsError::InvalidBracket { lo, hi });
    }
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo) < tol.max(f64::EPSILON * mid.abs()) {
            return Ok(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Newton–Raphson with a bisection safeguard on `[lo, hi]` (NR `rtsafe`).
/// `fdf` returns `(f(x), f'(x))`. Falls back to a bisection step whenever
/// Newton would leave the bracket or converge too slowly.
pub fn newton_safeguarded<F: Fn(f64) -> (f64, f64)>(
    fdf: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64> {
    let flo = fdf(lo).0;
    let fhi = fdf(hi).0;
    newton_safeguarded_seeded(fdf, lo, hi, flo, fhi, tol)
}

/// [`newton_safeguarded`] with the endpoint function values supplied by
/// the caller. Bracket scans necessarily evaluate `f` at both endpoints
/// already; passing those values here saves the two re-evaluations the
/// plain entry point performs — for an MLE objective each is a full
/// `O(n)` pass over the sample. The iteration is otherwise identical, so
/// seeding with `fdf(lo).0` / `fdf(hi).0` reproduces
/// [`newton_safeguarded`] bitwise.
pub fn newton_safeguarded_seeded<F: Fn(f64) -> (f64, f64)>(
    fdf: F,
    lo: f64,
    hi: f64,
    flo: f64,
    fhi: f64,
    tol: f64,
) -> Result<f64> {
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() || lo >= hi {
        return Err(NumericsError::InvalidBracket { lo, hi });
    }
    // Orient so f(xl) < 0.
    let (mut xl, mut xh) = if flo < 0.0 { (lo, hi) } else { (hi, lo) };
    let mut rts = 0.5 * (lo + hi);
    let mut dx_old = (hi - lo).abs();
    let mut dx = dx_old;
    let (mut fv, mut dv) = fdf(rts);
    for _ in 0..MAX_ITER {
        let newton_leaves_bracket = ((rts - xh) * dv - fv) * ((rts - xl) * dv - fv) > 0.0;
        let slow = (2.0 * fv).abs() > (dx_old * dv).abs();
        if newton_leaves_bracket || slow || dv == 0.0 {
            dx_old = dx;
            dx = 0.5 * (xh - xl);
            rts = xl + dx;
            if rts == xl {
                return Ok(rts);
            }
        } else {
            dx_old = dx;
            dx = fv / dv;
            let tmp = rts;
            rts -= dx;
            if tmp == rts {
                return Ok(rts);
            }
        }
        if dx.abs() < tol.max(f64::EPSILON * rts.abs()) {
            return Ok(rts);
        }
        let (nf, nd) = fdf(rts);
        fv = nf;
        dv = nd;
        if fv < 0.0 {
            xl = rts;
        } else {
            xh = rts;
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "newton_safeguarded",
        iterations: MAX_ITER,
    })
}

/// Brent's root finder (inverse-quadratic interpolation with bisection
/// safeguard); robust default for quantile inversion where derivatives
/// are unavailable or expensive.
pub fn brent_root<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    let (mut a, mut b) = (lo, hi);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() || a >= b {
        return Err(NumericsError::InvalidBracket { lo, hi });
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;
    for _ in 0..MAX_ITER {
        if fb.abs() > fc.abs() {
            // Ensure b is the best estimate: rotate so |f(b)| <= |f(c)|.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                // Secant step
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                // Inverse quadratic interpolation
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        b += if d.abs() > tol1 { d } else { tol1.copysign(xm) };
        fb = f(b);
        if (fb > 0.0) == (fc > 0.0) {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "brent_root",
        iterations: MAX_ITER,
    })
}

/// Expand `[lo, hi]` geometrically until it brackets a sign change of `f`,
/// then solve with [`brent_root`]. `grow_hi` controls which direction(s)
/// expand. Handy for quantiles of heavy-tailed distributions whose scale
/// is unknown a priori.
pub fn bracket_and_solve<F: Fn(f64) -> f64 + Copy>(
    f: F,
    lo0: f64,
    hi0: f64,
    tol: f64,
) -> Result<f64> {
    let mut lo = lo0;
    let mut hi = hi0;
    let mut flo = f(lo);
    let mut fhi = f(hi);
    for _ in 0..80 {
        if flo == 0.0 {
            return Ok(lo);
        }
        if fhi == 0.0 {
            return Ok(hi);
        }
        if flo.signum() != fhi.signum() {
            return brent_root(f, lo, hi, tol);
        }
        // Expand toward whichever end looks closer to a crossing.
        if flo.abs() < fhi.abs() {
            let w = hi - lo;
            lo = (lo - w).max(lo / 2.0).min(lo);
            if lo <= 0.0 {
                lo = lo0 / 2f64.powi(10);
            }
            flo = f(lo);
        } else {
            hi += (hi - lo).max(hi);
            fhi = f(hi);
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "bracket_and_solve",
        iterations: 80,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!(approx_eq(r, std::f64::consts::SQRT_2, 1e-10, 1e-11));
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_no_sign_change() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).is_err());
    }

    #[test]
    fn newton_cubic() {
        let r = newton_safeguarded(|x| (x * x * x - 8.0, 3.0 * x * x), 0.0, 5.0, 1e-13).unwrap();
        assert!(approx_eq(r, 2.0, 1e-10, 1e-12));
    }

    #[test]
    fn newton_survives_flat_derivative() {
        // f = x³: derivative vanishes at 0, the root. Safeguard must kick in.
        let r = newton_safeguarded(|x| (x * x * x, 3.0 * x * x), -1.0, 2.0, 1e-10).unwrap();
        assert!(r.abs() < 1e-8, "r={r}");
    }

    #[test]
    fn newton_invalid_bracket() {
        assert!(newton_safeguarded(|x| (x * x + 1.0, 2.0 * x), -1.0, 1.0, 1e-10).is_err());
    }

    #[test]
    fn newton_seeded_matches_unseeded_bitwise() {
        let fdf = |x: f64| (x.ln() + x - 3.0, 1.0 / x + 1.0);
        let plain = newton_safeguarded(fdf, 0.5, 5.0, 1e-12).unwrap();
        let seeded =
            newton_safeguarded_seeded(fdf, 0.5, 5.0, fdf(0.5).0, fdf(5.0).0, 1e-12).unwrap();
        assert_eq!(plain.to_bits(), seeded.to_bits());
    }

    #[test]
    fn newton_seeded_endpoint_roots_and_bad_bracket() {
        let fdf = |x: f64| (x - 2.0, 1.0);
        assert_eq!(
            newton_safeguarded_seeded(fdf, 2.0, 5.0, 0.0, 3.0, 1e-12).unwrap(),
            2.0
        );
        assert_eq!(
            newton_safeguarded_seeded(fdf, -1.0, 2.0, -3.0, 0.0, 1e-12).unwrap(),
            2.0
        );
        assert!(
            newton_safeguarded_seeded(|x| (x * x + 1.0, 2.0 * x), -1.0, 1.0, 2.0, 2.0, 1e-10)
                .is_err()
        );
    }

    #[test]
    fn brent_transcendental() {
        // x e^x = 1 → x = W(1) ≈ 0.5671432904097838
        let r = brent_root(|x| x * x.exp() - 1.0, 0.0, 1.0, 1e-14).unwrap();
        assert!(approx_eq(r, 0.567_143_290_409_783_8, 1e-10, 1e-12));
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| (x / 3409.0).powf(0.43) - 1.0; // Weibull CDF crossing e⁻¹
        let rb = brent_root(f, 1.0, 1e6, 1e-9).unwrap();
        let bi = bisect(f, 1.0, 1e6, 1e-9).unwrap();
        assert!(approx_eq(rb, bi, 1e-6, 1e-3), "brent {rb} bisect {bi}");
        assert!(approx_eq(rb, 3409.0, 1e-6, 1e-3));
    }

    #[test]
    fn bracket_and_solve_expands() {
        // Root at 1000, initial guess interval [0.1, 1].
        let r = bracket_and_solve(|x| x - 1000.0, 0.1, 1.0, 1e-10).unwrap();
        assert!(approx_eq(r, 1000.0, 1e-9, 1e-7));
    }

    #[test]
    fn all_solvers_agree() {
        let f = |x: f64| x.ln() + x - 3.0;
        let b = bisect(f, 0.5, 5.0, 1e-12).unwrap();
        let n = newton_safeguarded(|x| (x.ln() + x - 3.0, 1.0 / x + 1.0), 0.5, 5.0, 1e-12).unwrap();
        let br = brent_root(f, 0.5, 5.0, 1e-12).unwrap();
        assert!(approx_eq(b, n, 1e-9, 1e-10));
        assert!(approx_eq(n, br, 1e-9, 1e-10));
    }
}
