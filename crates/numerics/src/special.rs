//! Special functions: log-gamma, gamma, digamma, error function, and the
//! regularized incomplete gamma/beta functions.
//!
//! These are the ingredients for Weibull moments (`Γ(1 + 1/α)`), Student-t
//! tail probabilities (incomplete beta), and goodness-of-fit statistics.
//! Implementations follow the classical Lanczos / continued-fraction
//! formulations with double-precision coefficient sets.

use crate::{NumericsError, Result};

/// Lanczos coefficients (g = 7, n = 9), good to ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.9999999999998099,
    676.5203681218851,
    -1259.1392167224028,
    771.3234287776531,
    -176.6150291621406,
    12.507343278686905,
    -0.13857109526572012,
    9.984369578019572e-6,
    1.5056327351493116e-7,
];

/// Natural logarithm of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Errors
/// Returns [`NumericsError::DomainError`] for non-finite or non-positive
/// inputs (other than the reflected range handled internally).
pub fn ln_gamma(x: f64) -> Result<f64> {
    if !x.is_finite() {
        return Err(NumericsError::DomainError {
            routine: "ln_gamma",
            message: "non-finite input",
        });
    }
    if x <= 0.0 {
        return Err(NumericsError::DomainError {
            routine: "ln_gamma",
            message: "requires x > 0",
        });
    }
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        return Ok(std::f64::consts::PI.ln() - s.ln() - ln_gamma(1.0 - x)?);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    Ok(0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln())
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> Result<f64> {
    Ok(ln_gamma(x)?.exp())
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Recurrence to push the argument above 6, then the asymptotic series.
pub fn digamma(x: f64) -> Result<f64> {
    if !x.is_finite() || x <= 0.0 {
        return Err(NumericsError::DomainError {
            routine: "digamma",
            message: "requires finite x > 0",
        });
    }
    let mut x = x;
    let mut result = 0.0;
    // Push the argument above 10 so the truncated asymptotic series is
    // accurate to ~3e-13 relative (next Bernoulli term B10/(10 x^10)).
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion: ln x − 1/2x − Σ B_{2n} / (2n x^{2n})
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
    Ok(result)
}

/// Error function `erf(x)`, accurate to ~1.2e-16 via the incomplete gamma
/// relation `erf(x) = P(1/2, x²)` for `x ≥ 0` and odd symmetry.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_inc_gamma_p(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)` with care for the
/// large-`x` tail (uses `Q(1/2, x²)` directly instead of `1 − erf`).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_inc_gamma_q(0.5, x * x).unwrap_or(0.0)
    } else {
        2.0 - erfc(-x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
pub fn reg_inc_gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return Err(NumericsError::DomainError {
            routine: "reg_inc_gamma_p",
            message: "requires a > 0, x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        Ok(1.0 - gamma_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn reg_inc_gamma_q(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return Err(NumericsError::DomainError {
            routine: "reg_inc_gamma_q",
            message: "requires a > 0, x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series(a, x)?)
    } else {
        gamma_cf(a, x)
    }
}

/// Regularized lower incomplete gamma `P(a, x)` with a caller-supplied
/// `gln = ln Γ(a)`.
///
/// The kernel layer evaluates `P(a, ·)` at many points for one fixed
/// order `a`; recomputing the Lanczos `ln Γ(a)` inside every call is
/// ~40% of the series cost. Passing the identical `gln` value makes the
/// result bit-identical to [`reg_inc_gamma_p`] (same arithmetic on the
/// same operands, in the same order).
pub fn reg_inc_gamma_p_gln(a: f64, x: f64, gln: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return Err(NumericsError::DomainError {
            routine: "reg_inc_gamma_p",
            message: "requires a > 0, x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_series_gln(a, x, gln)
    } else {
        Ok(1.0 - gamma_cf_gln(a, x, gln)?)
    }
}

/// Regularized upper incomplete gamma `Q(a, x)` with a caller-supplied
/// `gln = ln Γ(a)`; bit-identical to [`reg_inc_gamma_q`] when `gln`
/// equals `ln_gamma(a)`.
pub fn reg_inc_gamma_q_gln(a: f64, x: f64, gln: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return Err(NumericsError::DomainError {
            routine: "reg_inc_gamma_q",
            message: "requires a > 0, x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series_gln(a, x, gln)?)
    } else {
        gamma_cf_gln(a, x, gln)
    }
}

/// Lane-batched `P(a, x_l)`: four evaluation points, one shared order
/// `a` and one shared `gln = ln Γ(a)`.
///
/// Each lane takes exactly the branch the scalar dispatch would take
/// (series for `x < a + 1`, continued fraction otherwise) and runs the
/// scalar iteration on its own variables in lockstep with the other
/// lanes of the same branch — converged lanes freeze, so every lane
/// stops with bit-identical state to its scalar run. Lanes that fail
/// (domain, non-convergence) return `None`, mirroring the `.ok()`
/// handling every kernel call site applies.
pub fn reg_inc_gamma_p_x4(a: f64, x: [f64; 4], gln: f64) -> [Option<f64>; 4] {
    if a <= 0.0 || !a.is_finite() {
        return [None; 4];
    }
    let mut out = [None; 4];
    let mut series_active = [false; 4];
    let mut cf_active = [false; 4];
    for l in 0..4 {
        if x[l] < 0.0 || !x[l].is_finite() {
            continue;
        }
        if x[l] == 0.0 {
            out[l] = Some(0.0);
        } else if x[l] < a + 1.0 {
            series_active[l] = true;
        } else {
            cf_active[l] = true;
        }
    }
    if series_active.iter().any(|&b| b) {
        let series = gamma_series_x4(a, x, gln, series_active);
        for l in 0..4 {
            if series_active[l] {
                out[l] = series[l];
            }
        }
    }
    if cf_active.iter().any(|&b| b) {
        let cf = gamma_cf_x4(a, x, gln, cf_active);
        for l in 0..4 {
            if cf_active[l] {
                out[l] = cf[l].map(|q| 1.0 - q);
            }
        }
    }
    out
}

/// Lane-batched `Q(a, x_l)`; see [`reg_inc_gamma_p_x4`].
pub fn reg_inc_gamma_q_x4(a: f64, x: [f64; 4], gln: f64) -> [Option<f64>; 4] {
    if a <= 0.0 || !a.is_finite() {
        return [None; 4];
    }
    let mut out = [None; 4];
    let mut series_active = [false; 4];
    let mut cf_active = [false; 4];
    for l in 0..4 {
        if x[l] < 0.0 || !x[l].is_finite() {
            continue;
        }
        if x[l] == 0.0 {
            out[l] = Some(1.0);
        } else if x[l] < a + 1.0 {
            series_active[l] = true;
        } else {
            cf_active[l] = true;
        }
    }
    if series_active.iter().any(|&b| b) {
        let series = gamma_series_x4(a, x, gln, series_active);
        for l in 0..4 {
            if series_active[l] {
                out[l] = series[l].map(|p| 1.0 - p);
            }
        }
    }
    if cf_active.iter().any(|&b| b) {
        let cf = gamma_cf_x4(a, x, gln, cf_active);
        for l in 0..4 {
            if cf_active[l] {
                out[l] = cf[l];
            }
        }
    }
    out
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> Result<f64> {
    let gln = ln_gamma(a)?;
    gamma_series_gln(a, x, gln)
}

/// [`gamma_series`] with the `ln Γ(a)` hoisted to the caller.
fn gamma_series_gln(a: f64, x: f64, gln: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return Ok(sum * (-x + a * x.ln() - gln).exp());
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "gamma_series",
        iterations: MAX_ITER,
    })
}

/// Lane-lockstep [`gamma_series_gln`]: four independent series chains
/// advanced together (the `sum += del` recurrence is latency-bound, so
/// interleaving four chains hides most of the mul/div latency). Each
/// lane performs exactly the scalar operation sequence on its own
/// variables and freezes at its own convergence point — the outputs are
/// bit-identical to four scalar calls.
fn gamma_series_x4(a: f64, x: [f64; 4], gln: f64, active: [bool; 4]) -> [Option<f64>; 4] {
    let mut ap = a;
    let mut sum = [1.0 / a; 4];
    let mut del = sum;
    let mut done = [false; 4];
    for l in 0..4 {
        done[l] = !active[l];
    }
    let mut out = [None; 4];
    for _ in 0..MAX_ITER {
        ap += 1.0;
        for l in 0..4 {
            if done[l] {
                continue;
            }
            del[l] *= x[l] / ap;
            sum[l] += del[l];
            if del[l].abs() < sum[l].abs() * EPS {
                done[l] = true;
                out[l] = Some(sum[l] * (-x[l] + a * x[l].ln() - gln).exp());
            }
        }
        if done == [true; 4] {
            return out;
        }
    }
    out
}

/// Lane-lockstep [`gamma_cf_gln`] (modified Lentz, four chains). Same
/// freeze-at-own-convergence contract as [`gamma_series_x4`].
fn gamma_cf_x4(a: f64, x: [f64; 4], gln: f64, active: [bool; 4]) -> [Option<f64>; 4] {
    let mut b = [0.0f64; 4];
    let mut c = [1.0 / FPMIN; 4];
    let mut d = [0.0f64; 4];
    let mut h = [0.0f64; 4];
    let mut done = [false; 4];
    for l in 0..4 {
        done[l] = !active[l];
        if active[l] {
            b[l] = x[l] + 1.0 - a;
            d[l] = 1.0 / b[l];
            h[l] = d[l];
        }
    }
    let mut out = [None; 4];
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        for l in 0..4 {
            if done[l] {
                continue;
            }
            b[l] += 2.0;
            d[l] = an * d[l] + b[l];
            if d[l].abs() < FPMIN {
                d[l] = FPMIN;
            }
            c[l] = b[l] + an / c[l];
            if c[l].abs() < FPMIN {
                c[l] = FPMIN;
            }
            d[l] = 1.0 / d[l];
            let del = d[l] * c[l];
            h[l] *= del;
            if (del - 1.0).abs() < EPS {
                done[l] = true;
                out[l] = Some((-x[l] + a * x[l].ln() - gln).exp() * h[l]);
            }
        }
        if done == [true; 4] {
            return out;
        }
    }
    out
}

/// Continued-fraction representation of `Q(a, x)`, convergent for
/// `x ≥ a + 1` (modified Lentz).
fn gamma_cf(a: f64, x: f64) -> Result<f64> {
    let gln = ln_gamma(a)?;
    gamma_cf_gln(a, x, gln)
}

/// [`gamma_cf`] with the `ln Γ(a)` hoisted to the caller.
fn gamma_cf_gln(a: f64, x: f64, gln: f64) -> Result<f64> {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok((-x + a * x.ln() - gln).exp() * h);
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "gamma_cf",
        iterations: MAX_ITER,
    })
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued fraction (modified Lentz) with the symmetry transformation
/// for `x > (a+1)/(a+b+2)`; this is the basis for Student-t probabilities.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 || !(0.0..=1.0).contains(&x) {
        return Err(NumericsError::DomainError {
            routine: "reg_inc_beta",
            message: "requires a, b > 0 and 0 <= x <= 1",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b)? - ln_gamma(a)? - ln_gamma(b)? + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(a, b, x)? / a)
    } else {
        Ok(1.0 - front * beta_cf(b, a, 1.0 - x)? / b)
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(NumericsError::NoConvergence {
        routine: "beta_cf",
        iterations: MAX_ITER,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64).unwrap();
            assert!(approx_eq(lg, f64::ln(f), 1e-12, 1e-12), "n={n} lg={lg}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let lg = ln_gamma(0.5).unwrap();
        assert!(approx_eq(lg.exp(), std::f64::consts::PI.sqrt(), 1e-12, 0.0));
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.6256099082219083
        let g = gamma(0.25).unwrap();
        assert!(approx_eq(g, 3.625_609_908_221_908, 1e-12, 0.0), "g={g}");
    }

    #[test]
    fn ln_gamma_rejects_nonpositive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.5).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn gamma_recurrence_property() {
        // Γ(x+1) = x Γ(x) across a range of x
        for i in 1..200 {
            let x = i as f64 * 0.11;
            let lhs = gamma(x + 1.0).unwrap();
            let rhs = x * gamma(x).unwrap();
            assert!(
                approx_eq(lhs, rhs, 1e-10, 1e-12),
                "x={x} lhs={lhs} rhs={rhs}"
            );
        }
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ (Euler–Mascheroni)
        let euler = 0.577_215_664_901_532_9;
        assert!(approx_eq(digamma(1.0).unwrap(), -euler, 1e-10, 1e-12));
        // ψ(1/2) = −γ − 2 ln 2
        let expected = -euler - 2.0 * std::f64::consts::LN_2;
        assert!(approx_eq(digamma(0.5).unwrap(), expected, 1e-10, 1e-12));
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for i in 1..100 {
            let x = i as f64 * 0.173;
            let lhs = digamma(x + 1.0).unwrap();
            let rhs = digamma(x).unwrap() + 1.0 / x;
            assert!(approx_eq(lhs, rhs, 1e-9, 1e-10), "x={x}");
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(approx_eq(erf(0.0), 0.0, 0.0, 1e-15));
        assert!(approx_eq(erf(1.0), 0.842_700_792_949_714_9, 1e-10, 0.0));
        assert!(approx_eq(erf(-1.0), -0.842_700_792_949_714_9, 1e-10, 0.0));
        assert!(approx_eq(erf(2.0), 0.995_322_265_018_952_7, 1e-10, 0.0));
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) ≈ 1.5374597944280349e-12; naive 1-erf would lose all digits.
        assert!(approx_eq(erfc(5.0), 1.537_459_794_428_035e-12, 1e-8, 0.0));
    }

    #[test]
    fn erf_erfc_complementarity() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!(approx_eq(erf(x) + erfc(x), 1.0, 1e-12, 1e-12), "x={x}");
        }
    }

    #[test]
    fn inc_gamma_exponential_cdf() {
        // P(1, x) = 1 − e^{−x}: the exponential CDF.
        for i in 0..60 {
            let x = i as f64 * 0.25;
            let p = reg_inc_gamma_p(1.0, x).unwrap();
            assert!(approx_eq(p, 1.0 - (-x).exp(), 1e-12, 1e-14), "x={x}");
        }
    }

    #[test]
    fn inc_gamma_p_plus_q_is_one() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 10.0, 42.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 60.0] {
                let p = reg_inc_gamma_p(a, x).unwrap();
                let q = reg_inc_gamma_q(a, x).unwrap();
                assert!(approx_eq(p + q, 1.0, 1e-12, 1e-12), "a={a} x={x}");
            }
        }
    }

    #[test]
    fn inc_gamma_gln_variants_bitwise() {
        for &a in &[0.3, 0.5, 1.0, 1.9, 2.5, 10.0] {
            let gln = ln_gamma(a).unwrap();
            for &x in &[0.0, 0.01, 0.5, 1.0, 3.0, 10.0, 60.0, 300.0] {
                let p = reg_inc_gamma_p(a, x).unwrap();
                let q = reg_inc_gamma_q(a, x).unwrap();
                assert_eq!(
                    reg_inc_gamma_p_gln(a, x, gln).unwrap().to_bits(),
                    p.to_bits(),
                    "P a={a} x={x}"
                );
                assert_eq!(
                    reg_inc_gamma_q_gln(a, x, gln).unwrap().to_bits(),
                    q.to_bits(),
                    "Q a={a} x={x}"
                );
            }
        }
    }

    #[test]
    fn inc_gamma_x4_bitwise_matches_scalar() {
        // Batches straddling the series/CF boundary, zero lanes, and
        // bad lanes — each live lane must be bit-identical to its
        // scalar evaluation.
        for &a in &[0.45, 1.0, 1.9, 7.3] {
            let gln = ln_gamma(a).unwrap();
            let batches = [
                [0.0, 0.3, a + 0.5, a + 40.0],
                [1e-6, a + 0.99, a + 1.01, 700.0],
                [0.2, 0.4, 0.6, 0.8],
                [a + 2.0, a + 20.0, a + 200.0, f64::NAN],
            ];
            for x in batches {
                let p4 = reg_inc_gamma_p_x4(a, x, gln);
                let q4 = reg_inc_gamma_q_x4(a, x, gln);
                for l in 0..4 {
                    let p = reg_inc_gamma_p(a, x[l]).ok();
                    let q = reg_inc_gamma_q(a, x[l]).ok();
                    assert_eq!(
                        p4[l].map(f64::to_bits),
                        p.map(f64::to_bits),
                        "P a={a} x={:?} lane {l}",
                        x
                    );
                    assert_eq!(
                        q4[l].map(f64::to_bits),
                        q.map(f64::to_bits),
                        "Q a={a} x={:?} lane {l}",
                        x
                    );
                }
            }
        }
    }

    #[test]
    fn inc_gamma_x4_rejects_bad_order() {
        assert_eq!(reg_inc_gamma_p_x4(-1.0, [1.0; 4], 0.0), [None; 4]);
        assert_eq!(reg_inc_gamma_q_x4(f64::NAN, [1.0; 4], 0.0), [None; 4]);
    }

    #[test]
    fn inc_gamma_domain_errors() {
        assert!(reg_inc_gamma_p(-1.0, 1.0).is_err());
        assert!(reg_inc_gamma_p(1.0, -1.0).is_err());
        assert!(reg_inc_gamma_q(0.0, 1.0).is_err());
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b) in &[(0.5, 0.5), (2.0, 3.0), (10.0, 1.5), (0.3, 7.0)] {
            for i in 1..10 {
                let x = i as f64 / 10.0;
                let lhs = reg_inc_beta(a, b, x).unwrap();
                let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
                assert!(approx_eq(lhs, rhs, 1e-11, 1e-12), "a={a} b={b} x={x}");
            }
        }
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!(approx_eq(
                reg_inc_beta(1.0, 1.0, x).unwrap(),
                x,
                1e-12,
                1e-14
            ));
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2,2) = 5/32 ... compute:
        // I_x(2,2) = x^2 (3 - 2x). At x=0.25: 0.0625 * 2.5 = 0.15625.
        assert!(approx_eq(
            reg_inc_beta(2.0, 2.0, 0.25).unwrap(),
            0.15625,
            1e-12,
            0.0
        ));
        assert!(approx_eq(
            reg_inc_beta(2.0, 2.0, 0.5).unwrap(),
            0.5,
            1e-12,
            0.0
        ));
    }

    #[test]
    fn inc_beta_bounds_and_domain() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
        assert!(reg_inc_beta(0.0, 1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn inc_beta_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = reg_inc_beta(3.0, 1.7, x).unwrap();
            assert!(v >= prev, "non-monotone at x={x}");
            prev = v;
        }
    }
}
