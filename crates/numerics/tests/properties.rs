//! Property-based tests for the numerical kernel.

use chs_numerics::optimize::{minimize_bounded, minimize_brent, minimize_golden};
use chs_numerics::quadrature::{adaptive_simpson, composite_gauss_legendre, gauss_legendre_20};
use chs_numerics::roots::{bisect, brent_root};
use chs_numerics::special::{ln_gamma, reg_inc_beta, reg_inc_gamma_p, reg_inc_gamma_q};
use proptest::prelude::*;

proptest! {
    /// Γ(x+1) = x·Γ(x) in log form across the positive axis.
    #[test]
    fn lgamma_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0).unwrap();
        let rhs = ln_gamma(x).unwrap() + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    /// P(a,x) + Q(a,x) = 1 and both lie in [0,1].
    #[test]
    fn inc_gamma_complementary(a in 0.1f64..50.0, x in 0.0f64..200.0) {
        let p = reg_inc_gamma_p(a, x).unwrap();
        let q = reg_inc_gamma_q(a, x).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-10);
    }

    /// P(a, ·) is non-decreasing.
    #[test]
    fn inc_gamma_monotone(a in 0.1f64..20.0, x in 0.0f64..50.0, dx in 0.0f64..10.0) {
        let p1 = reg_inc_gamma_p(a, x).unwrap();
        let p2 = reg_inc_gamma_p(a, x + dx).unwrap();
        prop_assert!(p2 + 1e-12 >= p1);
    }

    /// I_x(a,b) = 1 − I_{1−x}(b,a).
    #[test]
    fn inc_beta_reflection(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.001f64..0.999) {
        let lhs = reg_inc_beta(a, b, x).unwrap();
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// Adaptive Simpson is linear: ∫(αf) = α∫f for polynomials.
    #[test]
    fn simpson_linearity(alpha in -5.0f64..5.0, b in 0.1f64..10.0) {
        let base = adaptive_simpson(|x| x * x + 1.0, 0.0, b, 1e-11).unwrap();
        let scaled = adaptive_simpson(|x| alpha * (x * x + 1.0), 0.0, b, 1e-11).unwrap();
        prop_assert!((scaled - alpha * base).abs() < 1e-7 * base.abs().max(1.0));
    }

    /// Gauss–Legendre and adaptive Simpson agree on smooth integrands.
    #[test]
    fn quadratures_agree(rate in 0.01f64..2.0, b in 0.5f64..20.0) {
        let f = move |x: f64| 1.0 - (-rate * x).exp();
        let simpson = adaptive_simpson(f, 0.0, b, 1e-11).unwrap();
        let gl = gauss_legendre_20(f, 0.0, b);
        let cgl = composite_gauss_legendre(f, 0.0, b, 4);
        prop_assert!((simpson - gl).abs() < 1e-8 * simpson.abs().max(1.0));
        prop_assert!((simpson - cgl).abs() < 1e-9 * simpson.abs().max(1.0));
    }

    /// Root finders agree on monotone functions with a guaranteed crossing.
    #[test]
    fn roots_agree(root in 0.1f64..100.0, slope in 0.1f64..10.0) {
        let f = move |x: f64| slope * (x - root);
        let b = bisect(f, 0.0, 200.0, 1e-10).unwrap();
        let br = brent_root(f, 0.0, 200.0, 1e-10).unwrap();
        prop_assert!((b - root).abs() < 1e-6);
        prop_assert!((br - root).abs() < 1e-6);
    }

    /// Golden section and Brent agree on a shifted quartic, and the
    /// located minimum is no worse than either endpoint of the bracket.
    #[test]
    fn minimizers_agree(center in -20.0f64..20.0) {
        let f = move |x: f64| (x - center).powi(4) + 2.0;
        let g = minimize_golden(f, center - 7.0, center - 3.0, 1e-9).unwrap();
        let b = minimize_brent(f, center - 7.0, center - 3.0, 1e-9).unwrap();
        // Quartic is flat near its minimum: abscissa agreement is loose but
        // the minimum values must both be ~2.
        prop_assert!((g.f - 2.0).abs() < 1e-6);
        prop_assert!((b.f - 2.0).abs() < 1e-6);
    }

    /// Bounded minimization never returns a point outside the bounds.
    #[test]
    fn bounded_stays_in_bounds(lo in -10.0f64..0.0, width in 0.5f64..20.0, c in -30.0f64..30.0) {
        let hi = lo + width;
        let m = minimize_bounded(move |x| (x - c) * (x - c), lo, hi, 1e-9).unwrap();
        prop_assert!(m.x >= lo - 1e-9 && m.x <= hi + 1e-9);
        // And it is optimal among {lo, hi, clamp(c)} up to tolerance.
        let best = (c.clamp(lo, hi) - c).powi(2);
        prop_assert!(m.f <= best + 1e-5 * best.max(1.0));
    }
}
