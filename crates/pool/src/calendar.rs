//! A bucketed calendar queue for time-keyed simulation events.
//!
//! The classic structure (Brown 1988): a ring of buckets, each `width`
//! seconds of virtual time wide, holding *unsorted* events. Popping
//! scans the cursor bucket for the earliest event belonging to the
//! cursor's current lap and advances the cursor when the bucket has
//! none; with the width chosen so a bucket holds O(1) live events, both
//! insert and pop are O(1) amortized. Events far in the future wrap
//! around the ring and are skipped (lap check) until their lap comes up.
//!
//! Determinism: events are ordered by the **total** key
//! `(time, kind priority, machine, aux)`. No two distinct events compare
//! equal, so the pop sequence is a pure function of the *set* of events,
//! never of insertion order — the property the pool's
//! shuffled-insertion replay gate relies on.
//!
//! Cancellation is the caller's problem by design: the pool engine
//! invalidates superseded events with per-machine generation counters
//! and discards them on pop, which keeps this structure append-only.

/// What a calendar event means to the pool engine. Priorities at equal
/// times: segment end (eviction) < work end < placement, and transfer
/// completions — which live in the fabric, not here — beat all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The availability segment ends: the owner reclaims the machine.
    SegEnd {
        /// Segment index this eviction belongs to.
        seg: u32,
    },
    /// The planned work interval ends: start the checkpoint transfer.
    WorkEnd {
        /// Work epoch this boundary belongs to (stale epochs are no-ops).
        epoch: u32,
    },
    /// The machine's next availability segment begins.
    Place {
        /// Segment index being placed.
        seg: u32,
    },
}

impl EventKind {
    fn priority(self) -> u8 {
        match self {
            EventKind::SegEnd { .. } => 1,
            EventKind::WorkEnd { .. } => 2,
            EventKind::Place { .. } => 3,
        }
    }

    fn aux(self) -> u32 {
        match self {
            EventKind::SegEnd { seg } | EventKind::Place { seg } => seg,
            EventKind::WorkEnd { epoch } => epoch,
        }
    }
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Absolute virtual time, seconds.
    pub time: f64,
    /// Meaning and staleness guard.
    pub kind: EventKind,
    /// Machine id.
    pub machine: u32,
}

impl Event {
    /// The total ordering key: time, then kind priority, then machine,
    /// then the kind's payload. Distinct events never tie. (Transfer
    /// completions, which live in the fabric, compare as priority 0 —
    /// they beat any calendar event at the same instant.)
    pub fn key(&self) -> (u64, u8, u32, u32) {
        // Times are non-negative finite, so the IEEE bit pattern orders
        // like the value and gives a total order with no NaN caveats.
        (
            self.time.to_bits(),
            self.kind.priority(),
            self.machine,
            self.kind.aux(),
        )
    }
}

/// The calendar queue.
#[derive(Debug)]
pub struct CalendarQueue {
    buckets: Vec<Vec<Event>>,
    /// Seconds of virtual time per bucket.
    width: f64,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// Lap-qualified cursor: the bucket index is `cursor & mask`, the
    /// lap is `cursor / buckets.len()`; an event in the cursor bucket is
    /// due when `floor(time / width) == cursor`.
    cursor: u64,
    len: usize,
}

impl CalendarQueue {
    /// A queue sized for roughly `expected_events` concurrently
    /// outstanding events spread over windows of `horizon` seconds.
    pub fn new(expected_events: usize, horizon: f64) -> Self {
        let n = expected_events.clamp(64, 1 << 20).next_power_of_two();
        let horizon = if horizon.is_finite() && horizon > 0.0 {
            horizon
        } else {
            1.0
        };
        // One bucket per expected event across the horizon keeps bucket
        // occupancy O(1); the floor keeps the lap arithmetic sane.
        let width = (horizon / n as f64).max(1e-6);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            width,
            mask: n - 1,
            cursor: 0,
            len: 0,
        }
    }

    /// Number of events currently stored (including stale ones the
    /// caller has logically cancelled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn lap_of(&self, time: f64) -> u64 {
        (time / self.width) as u64
    }

    /// Insert an event. The cursor is only a "no events before this
    /// lap" hint: a peek may legitimately advance it past empty laps and
    /// then lose the race to a fabric completion, after which the engine
    /// schedules follow-up events at the earlier completion time — so a
    /// push behind the cursor rewinds it rather than being an error.
    pub fn push(&mut self, event: Event) {
        debug_assert!(
            event.time.is_finite() && event.time >= 0.0,
            "event time must be finite and non-negative"
        );
        let lap = self.lap_of(event.time);
        if lap < self.cursor {
            self.cursor = lap;
        }
        self.buckets[(lap as usize) & self.mask].push(event);
        self.len += 1;
    }

    /// The earliest event's ordering key, without removing it.
    pub fn peek(&mut self) -> Option<Event> {
        self.locate()
            .map(|(bucket, slot)| self.buckets[bucket][slot])
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        let (bucket, slot) = self.locate()?;
        let event = self.buckets[bucket].swap_remove(slot);
        self.len -= 1;
        Some(event)
    }

    /// Find the earliest event, advancing the cursor over empty laps.
    /// Returns `(bucket index, slot)`.
    fn locate(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        loop {
            // Scan at most one full ring revolution from the cursor; if
            // every live event is further than one lap away (a sparse
            // queue), fall back to a direct minimum scan and jump.
            for _ in 0..n {
                let bucket = (self.cursor as usize) & self.mask;
                if let Some(slot) = self.due_in(bucket, self.cursor) {
                    return Some((bucket, slot));
                }
                self.cursor += 1;
            }
            let earliest_lap = self
                .buckets
                .iter()
                .flatten()
                .map(|e| self.lap_of(e.time))
                .min()
                .expect("len > 0");
            debug_assert!(earliest_lap >= self.cursor);
            self.cursor = earliest_lap;
        }
    }

    /// The slot of the minimal due event in `bucket` for `lap`, if any.
    fn due_in(&self, bucket: usize, lap: u64) -> Option<usize> {
        let mut best: Option<(usize, (u64, u8, u32, u32))> = None;
        for (slot, event) in self.buckets[bucket].iter().enumerate() {
            if self.lap_of(event.time) != lap {
                continue;
            }
            let key = event.key();
            if best.is_none_or(|(_, k)| key < k) {
                best = Some((slot, key));
            }
        }
        best.map(|(slot, _)| slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, machine: u32) -> Event {
        Event {
            time,
            kind: EventKind::Place { seg: 0 },
            machine,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new(16, 100.0);
        for &t in &[50.0, 3.0, 99.0, 0.5, 42.0, 42.5] {
            q.push(ev(t, (t * 10.0) as u32));
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.time);
        }
        assert_eq!(out, vec![0.5, 3.0, 42.0, 42.5, 50.0, 99.0]);
    }

    #[test]
    fn equal_times_order_by_priority_then_machine() {
        let mut q = CalendarQueue::new(16, 10.0);
        q.push(Event {
            time: 5.0,
            kind: EventKind::Place { seg: 1 },
            machine: 0,
        });
        q.push(Event {
            time: 5.0,
            kind: EventKind::WorkEnd { epoch: 7 },
            machine: 2,
        });
        q.push(Event {
            time: 5.0,
            kind: EventKind::SegEnd { seg: 0 },
            machine: 9,
        });
        q.push(Event {
            time: 5.0,
            kind: EventKind::WorkEnd { epoch: 3 },
            machine: 1,
        });
        let kinds: Vec<(EventKind, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.kind, e.machine))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::SegEnd { seg: 0 }, 9),
                (EventKind::WorkEnd { epoch: 3 }, 1),
                (EventKind::WorkEnd { epoch: 7 }, 2),
                (EventKind::Place { seg: 1 }, 0),
            ]
        );
    }

    #[test]
    fn push_behind_an_advanced_cursor_rewinds() {
        // A peek walks the cursor to the far event; a later push at an
        // earlier time (the engine does this when a fabric completion
        // beats the calendar head) must still pop first.
        let mut q = CalendarQueue::new(64, 1000.0);
        q.push(ev(900.0, 1));
        assert_eq!(q.peek().unwrap().time, 900.0);
        q.push(ev(100.0, 2));
        assert_eq!(q.pop().unwrap().time, 100.0);
        assert_eq!(q.pop().unwrap().time, 900.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn insertion_order_never_matters() {
        let events: Vec<Event> = (0..200)
            .map(|i| Event {
                // Deliberately collide many events into few buckets and
                // a few exact time ties.
                time: ((i * 7) % 31) as f64 * 0.5,
                kind: if i % 3 == 0 {
                    EventKind::SegEnd { seg: i }
                } else {
                    EventKind::WorkEnd { epoch: i }
                },
                machine: i % 50,
            })
            .collect();
        let drain = |order: Vec<Event>| -> Vec<Event> {
            let mut q = CalendarQueue::new(8, 16.0);
            for e in order {
                q.push(e);
            }
            std::iter::from_fn(|| q.pop()).collect()
        };
        let forward = drain(events.clone());
        let mut shuffled = events.clone();
        // Deterministic shuffle: reverse + interleave halves.
        shuffled.reverse();
        let (a, b) = shuffled.split_at(shuffled.len() / 2);
        let interleaved: Vec<Event> = a
            .iter()
            .zip(b.iter())
            .flat_map(|(x, y)| [*x, *y])
            .chain(b.iter().skip(a.len()).copied())
            .collect();
        assert_eq!(forward, drain(interleaved));
        assert_eq!(forward.len(), events.len());
    }

    #[test]
    fn sparse_queues_jump_laps() {
        let mut q = CalendarQueue::new(64, 10.0);
        q.push(ev(0.25, 1));
        // Far beyond one ring revolution of the 64-bucket, ~0.15 s-wide
        // calendar.
        q.push(ev(5_000.0, 2));
        assert_eq!(q.pop().unwrap().machine, 1);
        assert_eq!(q.pop().unwrap().machine, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new(16, 10.0);
        q.push(ev(3.0, 7));
        q.push(ev(1.0, 4));
        assert_eq!(q.peek().unwrap().machine, 4);
        assert_eq!(q.pop().unwrap().machine, 4);
        assert_eq!(q.len(), 1);
    }
}
