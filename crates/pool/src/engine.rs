//! The pool engine: a calendar-queue discrete-event loop over
//! structure-of-arrays machine state.
//!
//! Every machine is a [`chs_cycle::CycleMachine`] — the same per-machine
//! state machine, ledger and observer seam the closed-form executor and
//! `run_contention` drive — but the engine around it never touches more
//! than the event's own machine plus the fabric's O(rack_size) bucket
//! summary:
//!
//! * Time-keyed events (placement, work end, segment end) live in the
//!   [`CalendarQueue`]; superseded entries are invalidated by segment
//!   index / work epoch and discarded on pop.
//! * Transfer completions are *not* time-keyed: they come from the
//!   [`Fabric`]'s volume-space heaps, which survive every rate change.
//! * Machines are synchronized **lazily**: `advance` is called only at
//!   a machine's own events, with phase durations computed in
//!   machine-local coordinates, so an uncontended pool reproduces the
//!   closed-form executor's ledger bitwise (the identity gate).
//! * Per-event work: O(rack_size) for the fair-share update plus O(log)
//!   heap traffic — independent of pool size. The `rescan` module keeps
//!   the O(machines)-per-event reference this replaces.
//!
//! Determinism: ties order by `(time, kind, machine)` with completions
//! first (the closed-form boundary-commit semantics), machine state is
//! indexed by stable ids, and nothing depends on insertion order or
//! thread count — replays are bitwise identical.

use chs_cycle::{
    clamp_interval, sanitize_age, CycleAccounting, CycleConfig, CycleMachine, CyclePhase,
    NoopObserver,
};
use chs_markov::mix64;

use crate::calendar::{CalendarQueue, Event, EventKind};
use crate::fabric::{Fabric, FabricConfig};
use crate::policy::PoolPolicy;
use crate::stats::{DistSummary, TimeHistogram};
use crate::workload::Timeline;
use crate::{PoolError, Result};

/// Configuration of one pool run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct PoolSimConfig {
    /// Machines in the pool (racked in id order).
    pub machines: usize,
    /// Network capacities and rack geometry.
    pub fabric: FabricConfig,
    /// Checkpoint image size per machine, MB.
    pub image_mb: f64,
    /// Virtual-time window, seconds.
    pub window: f64,
    /// Whether recovery transfers count toward network megabytes.
    pub count_recovery_bytes: bool,
    /// Keep per-machine ledgers in the result (tests and differential
    /// suites; at 10⁶ machines leave this off).
    pub keep_ledgers: bool,
    /// Initialize machines in reverse id order. State is keyed by
    /// stable ids, so results must be bitwise identical either way —
    /// the shuffled-insertion replay gate flips this.
    pub stress_insertion_order: bool,
}

impl PoolSimConfig {
    /// Check every knob.
    pub fn validate(&self) -> Result<()> {
        if self.machines == 0 {
            return Err(PoolError::InvalidConfig("need at least one machine"));
        }
        if !(self.image_mb.is_finite() && self.image_mb > 0.0) {
            return Err(PoolError::InvalidConfig(
                "image size must be positive and finite",
            ));
        }
        if !(self.window.is_finite() && self.window > 0.0) {
            return Err(PoolError::InvalidConfig(
                "window must be positive and finite",
            ));
        }
        self.fabric.validate()
    }

    /// Uncontended duration of one image transfer, seconds — the
    /// nominal measured cost before any transfer completes.
    pub fn nominal_cost(&self) -> f64 {
        self.image_mb / self.fabric.uncontended_mb_s()
    }
}

/// Aggregate outcome of a pool run. (Not serialized wholesale — the
/// per-machine `ledgers` can hold 10⁶ entries; `pool_bench` composes its
/// own report rows from the serializable summaries inside.)
#[derive(Debug, Clone)]
pub struct PoolResult {
    /// Machines simulated.
    pub machines: usize,
    /// Racks in the fabric.
    pub racks: usize,
    /// Window length, seconds.
    pub window: f64,
    /// The merged cycle ledger across all machines.
    pub cycle: CycleAccounting,
    /// Non-stale events processed (machine-events).
    pub events: u64,
    /// Superseded calendar entries discarded on pop.
    pub stale_events: u64,
    /// Transfers that ran to completion.
    pub transfers_completed: u64,
    /// Total duration of completed transfers, seconds.
    pub transfer_seconds: f64,
    /// Mean completed-transfer duration (0 when none completed).
    pub mean_transfer_seconds: f64,
    /// Time-weighted core-link utilization (fraction of capacity).
    pub core_utilization: DistSummary,
    /// Time-weighted rack-uplink utilization pooled over racks
    /// (idle racks contribute zeros).
    pub rack_utilization: DistSummary,
    /// Time-weighted concurrent transfers, pool-wide.
    pub concurrency: DistSummary,
    /// Time-weighted concurrent *checkpoint* (outbound) transfers — the
    /// checkpoint-synchronization statistic.
    pub checkpoint_concurrency: DistSummary,
    /// Time-weighted concurrent recovery (inbound) transfers.
    pub recovery_concurrency: DistSummary,
    /// Order-independent bitwise fingerprint of every machine's ledger;
    /// equal digests mean bitwise-equal replays.
    pub digest: u64,
    /// Per-machine ledgers when `keep_ledgers` was set, else empty.
    pub ledgers: Vec<CycleAccounting>,
}

impl PoolResult {
    /// Aggregate efficiency: committed work per occupied second.
    pub fn efficiency(&self) -> f64 {
        self.cycle.efficiency()
    }

    /// Committed work per second of window per machine — the goodput
    /// signal the congestion-collapse sweep watches.
    pub fn goodput(&self) -> f64 {
        if self.window > 0.0 && self.machines > 0 {
            self.cycle.useful_seconds / (self.window * self.machines as f64)
        } else {
            0.0
        }
    }
}

/// Fingerprint one ledger into a running digest.
fn digest_ledger(mut h: u64, machine: u32, a: &CycleAccounting) -> u64 {
    for bits in [
        a.useful_seconds.to_bits(),
        a.lost_seconds.to_bits(),
        a.lost_work_seconds.to_bits(),
        a.recovery_seconds.to_bits(),
        a.checkpoint_seconds.to_bits(),
        a.total_seconds.to_bits(),
        a.megabytes.to_bits(),
        a.full_megabytes.to_bits(),
        a.partial_megabytes.to_bits(),
        a.recoveries,
        a.recoveries_completed,
        a.checkpoints_attempted,
        a.checkpoints_committed,
        a.failures,
        machine as u64,
    ] {
        h = mix64(h ^ bits);
    }
    h
}

const NO_SEG: u32 = u32::MAX;

/// The pool simulator.
pub struct PoolSim;

struct SimState {
    config: PoolSimConfig,
    fabric: Fabric,
    calendar: CalendarQueue,
    cycles: Vec<CycleMachine>,
    // Structure-of-arrays per-machine state. No per-machine boxes; the
    // steady state allocates nothing beyond amortized heap growth.
    seg_index: Vec<u32>,
    seg_start: Vec<f64>,
    seg_len: Vec<f64>,
    seg_end: Vec<f64>,
    pend_start: Vec<f64>,
    pend_end: Vec<f64>,
    work_until: Vec<f64>, // machine-local clock
    work_epoch: Vec<u32>,
    flow_base: Vec<f64>,
    measured_cost: Vec<f64>,
    // Stats.
    core_util: TimeHistogram,
    rack_util: TimeHistogram,
    conc: TimeHistogram,
    ckpt_conc: TimeHistogram,
    rec_conc: TimeHistogram,
    n_ckpt: u64,
    n_rec: u64,
    events: u64,
    stale: u64,
    transfers_completed: u64,
    transfer_seconds: f64,
}

impl SimState {
    fn rack_of(&self, m: u32) -> u32 {
        m / self.config.fabric.rack_size as u32
    }

    /// Record the piecewise-constant link/concurrency signals for the
    /// slice `[fabric.now(), fabric.now() + dt)`.
    fn record_stats(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let core = self.config.fabric.core_mb_s;
        let uplink = self.config.fabric.uplink_mb_s;
        self.core_util.record(self.fabric.core_rate() / core, dt);
        let mut active_racks = 0u64;
        let rack_util = &mut self.rack_util;
        self.fabric.for_each_active_bucket(|k, racks, rate| {
            rack_util.record(k as f64 * rate / uplink, dt * racks as f64);
            active_racks += racks as u64;
        });
        let idle = self.fabric.racks() as u64 - active_racks;
        if idle > 0 {
            self.rack_util.record(0.0, dt * idle as f64);
        }
        self.conc.record(self.fabric.active_flows() as f64, dt);
        self.ckpt_conc.record(self.n_ckpt as f64, dt);
        self.rec_conc.record(self.n_rec as f64, dt);
    }

    /// Advance machine `m` to absolute time `t`, crediting `mb`
    /// megabytes to an in-flight transfer. Durations are computed in
    /// machine-local coordinates (exactly as the closed-form executor
    /// accumulates its `age`), which is what makes the uncongested
    /// identity gate bitwise.
    fn sync_to(&mut self, m: u32, local_t: f64, mb: f64) {
        let cycle = &mut self.cycles[m as usize];
        let dt = (local_t - cycle.age()).max(0.0);
        cycle.advance(dt, mb);
    }

    /// Megabytes served to `m`'s in-flight transfer so far (fabric must
    /// already be advanced to the read time).
    fn served(&self, m: u32) -> f64 {
        let image = self.config.image_mb;
        (self.fabric.flow_volume(self.rack_of(m)) - self.flow_base[m as usize]).clamp(0.0, image)
    }

    /// Plan the next interval and start working (machines never rest in
    /// `Ready`, matching `run_contention`).
    fn plan_and_work(&mut self, m: u32, policy: &mut dyn PoolPolicy) -> Result<()> {
        let i = m as usize;
        let age = self.cycles[i].age();
        let planned =
            clamp_interval(policy.next_interval(m, sanitize_age(age), self.measured_cost[i])?);
        self.cycles[i].start_work(planned, &mut NoopObserver);
        self.work_until[i] = age + planned;
        self.work_epoch[i] = self.work_epoch[i].wrapping_add(1);
        let at = (self.seg_start[i] + self.work_until[i]).max(self.fabric.now());
        if at < self.seg_end[i].min(self.config.window) + 1.0 {
            // Only calendar the boundary when it can still fire; a work
            // interval sailing past its segment end (or the window) is
            // resolved by the SegEnd eviction / final cutoff anyway.
            self.calendar.push(Event {
                time: at,
                kind: EventKind::WorkEnd {
                    epoch: self.work_epoch[i],
                },
                machine: m,
            });
        }
        Ok(())
    }

    /// A transfer completed at absolute `t` for machine `m`.
    fn complete_transfer(&mut self, m: u32, t: f64, policy: &mut dyn PoolPolicy) -> Result<()> {
        let i = m as usize;
        let local = t - self.seg_start[i];
        // Exact completion: the remainder of the image lands in this
        // final slice (the volume ledger agrees to fp dust; the exact
        // form keeps committed images bitwise whole).
        let remaining = self.cycles[i].transfer_remaining_mb().unwrap_or(0.0);
        self.sync_to(m, local, remaining);
        self.fabric.end_flow(m, self.rack_of(m));
        let duration = match self.cycles[i].phase() {
            CyclePhase::Recovery => {
                self.n_rec -= 1;
                self.cycles[i].complete_recovery(&mut NoopObserver)
            }
            CyclePhase::Checkpoint => {
                self.n_ckpt -= 1;
                self.cycles[i].complete_checkpoint(&mut NoopObserver)
            }
            other => unreachable!("transfer completion while {other:?}"),
        };
        self.measured_cost[i] = duration.max(1.0);
        self.transfer_seconds += duration;
        self.transfers_completed += 1;
        self.events += 1;
        self.plan_and_work(m, policy)
    }

    /// A calendar event fired at its recorded time.
    fn handle_event(&mut self, e: Event, timeline: &dyn DynTimeline) -> Result<EventOutcome> {
        let m = e.machine;
        let i = m as usize;
        match e.kind {
            EventKind::Place { seg } => {
                self.seg_index[i] = seg;
                self.seg_start[i] = self.pend_start[i];
                self.seg_end[i] = self.pend_end[i];
                self.seg_len[i] = self.pend_end[i] - self.pend_start[i];
                self.cycles[i].place(self.seg_len[i], &mut NoopObserver);
                self.calendar.push(Event {
                    time: self.seg_end[i],
                    kind: EventKind::SegEnd { seg },
                    machine: m,
                });
                self.flow_base[i] =
                    self.fabric
                        .start_flow(m, self.rack_of(m), self.config.image_mb);
                self.n_rec += 1;
                self.events += 1;
            }
            EventKind::SegEnd { seg } => {
                if self.seg_index[i] != seg || self.cycles[i].phase() == CyclePhase::Down {
                    self.stale += 1;
                    return Ok(EventOutcome::Stale);
                }
                let transferring = self.cycles[i].transferring();
                let mb = if transferring { self.served(m) } else { 0.0 };
                self.sync_to(m, self.seg_len[i], mb);
                if transferring {
                    match self.cycles[i].phase() {
                        CyclePhase::Recovery => self.n_rec -= 1,
                        CyclePhase::Checkpoint => self.n_ckpt -= 1,
                        _ => unreachable!(),
                    }
                    self.fabric.end_flow(m, self.rack_of(m));
                }
                self.cycles[i].evict(&mut NoopObserver);
                self.seg_index[i] = NO_SEG;
                self.events += 1;
                if let Some(next) = timeline.segment(m, seg + 1, self.seg_end[i]) {
                    if next.start < self.config.window && !next.is_empty() {
                        self.pend_start[i] = next.start;
                        self.pend_end[i] = next.end;
                        self.calendar.push(Event {
                            time: next.start.max(self.fabric.now()),
                            kind: EventKind::Place { seg: seg + 1 },
                            machine: m,
                        });
                    }
                }
            }
            EventKind::WorkEnd { epoch } => {
                if self.work_epoch[i] != epoch || self.cycles[i].phase() != CyclePhase::Work {
                    self.stale += 1;
                    return Ok(EventOutcome::Stale);
                }
                self.sync_to(m, self.work_until[i], 0.0);
                self.cycles[i].start_checkpoint(&mut NoopObserver);
                self.flow_base[i] =
                    self.fabric
                        .start_flow(m, self.rack_of(m), self.config.image_mb);
                self.n_ckpt += 1;
                self.events += 1;
            }
        }
        Ok(EventOutcome::Fired)
    }
}

enum EventOutcome {
    Fired,
    Stale,
}

/// Object-safe view of [`Timeline`] for the engine internals.
trait DynTimeline {
    fn segment(&self, machine: u32, index: u32, prev_end: f64) -> Option<crate::workload::Seg>;
}

impl<T: Timeline> DynTimeline for T {
    fn segment(&self, machine: u32, index: u32, prev_end: f64) -> Option<crate::workload::Seg> {
        Timeline::segment(self, machine, index, prev_end)
    }
}

impl PoolSim {
    /// Run the pool to the end of the window.
    pub fn run<T: Timeline, P: PoolPolicy>(
        config: &PoolSimConfig,
        timeline: &T,
        policy: &mut P,
    ) -> Result<PoolResult> {
        config.validate()?;
        let n = config.machines;
        let cycle_config = CycleConfig {
            // Step-driven: durations come from the fabric.
            checkpoint_cost: 0.0,
            recovery_cost: 0.0,
            image_mb: config.image_mb,
            count_recovery_bytes: config.count_recovery_bytes,
        };
        let nominal = config.nominal_cost();
        let mut state = SimState {
            config: *config,
            fabric: Fabric::new(config.fabric, n)?,
            calendar: CalendarQueue::new(n.saturating_mul(2), config.window),
            cycles: vec![CycleMachine::new(cycle_config); n],
            seg_index: vec![NO_SEG; n],
            seg_start: vec![0.0; n],
            seg_len: vec![0.0; n],
            seg_end: vec![0.0; n],
            pend_start: vec![0.0; n],
            pend_end: vec![0.0; n],
            work_until: vec![0.0; n],
            work_epoch: vec![0; n],
            flow_base: vec![0.0; n],
            measured_cost: vec![nominal; n],
            core_util: TimeHistogram::new(0.0, 1.0, 256),
            rack_util: TimeHistogram::new(0.0, 1.0, 256),
            conc: TimeHistogram::new(0.0, n as f64, 256),
            ckpt_conc: TimeHistogram::new(0.0, n as f64, 256),
            rec_conc: TimeHistogram::new(0.0, n as f64, 256),
            n_ckpt: 0,
            n_rec: 0,
            events: 0,
            stale: 0,
            transfers_completed: 0,
            transfer_seconds: 0.0,
        };

        // Seed first placements. Iteration order is irrelevant to the
        // outcome (the replay gate flips it); machine state is keyed by
        // stable ids throughout.
        let order: Box<dyn Iterator<Item = u32>> = if config.stress_insertion_order {
            Box::new((0..n as u32).rev())
        } else {
            Box::new(0..n as u32)
        };
        for m in order {
            if let Some(seg) = timeline.segment(m, 0, 0.0) {
                if seg.start < config.window && !seg.is_empty() {
                    state.pend_start[m as usize] = seg.start;
                    state.pend_end[m as usize] = seg.end;
                    state.calendar.push(Event {
                        time: seg.start,
                        kind: EventKind::Place { seg: 0 },
                        machine: m,
                    });
                }
            }
        }

        // Main loop: next event = min(calendar head, earliest transfer
        // completion); completions win ties (the boundary-commit rule).
        loop {
            let cal = state.calendar.peek();
            let xfer = state.fabric.next_completion();
            let (t_next, is_xfer) = match (cal, xfer) {
                (None, None) => break,
                (Some(e), None) => (e.time, false),
                (None, Some((t, _))) => (t, true),
                (Some(e), Some((t, m))) => {
                    if (t.to_bits(), 0u8, m, 0u32) <= e.key() {
                        (t, true)
                    } else {
                        (e.time, false)
                    }
                }
            };
            if t_next >= state.config.window {
                break;
            }
            let dt = t_next - state.fabric.now();
            state.record_stats(dt);
            state.fabric.advance(t_next);
            if is_xfer {
                let (_, m) = xfer.expect("chosen completion exists");
                state.complete_transfer(m, t_next, policy)?;
            } else {
                let e = state.calendar.pop().expect("chosen event exists");
                state.handle_event(e, timeline)?;
            }
        }

        // Window closed: advance the fabric and every placed machine to
        // the window edge, then flush in-flight phases as cutoffs (no
        // failure recorded) — the same protocol as `run_contention`.
        let window = state.config.window;
        state.record_stats(window - state.fabric.now());
        state.fabric.advance(window);
        for m in 0..n as u32 {
            let i = m as usize;
            if state.cycles[i].phase() == CyclePhase::Down {
                continue;
            }
            let transferring = state.cycles[i].transferring();
            let mb = if transferring { state.served(m) } else { 0.0 };
            state.sync_to(m, window - state.seg_start[i], mb);
            state.cycles[i].cutoff(&mut NoopObserver);
        }

        // Deterministic aggregation in machine order.
        let mut total = CycleAccounting::default();
        let mut digest = 0x706f_6f6c_u64;
        for (m, cycle) in state.cycles.iter().enumerate() {
            total.absorb(cycle.accounting());
            digest = digest_ledger(digest, m as u32, cycle.accounting());
        }
        let ledgers = if config.keep_ledgers {
            state
                .cycles
                .into_iter()
                .map(|c| c.into_accounting())
                .collect()
        } else {
            Vec::new()
        };

        Ok(PoolResult {
            machines: n,
            racks: state.fabric.racks(),
            window,
            cycle: total,
            events: state.events,
            stale_events: state.stale,
            transfers_completed: state.transfers_completed,
            transfer_seconds: state.transfer_seconds,
            mean_transfer_seconds: if state.transfers_completed > 0 {
                state.transfer_seconds / state.transfers_completed as f64
            } else {
                0.0
            },
            core_utilization: state.core_util.summary(),
            rack_utilization: state.rack_util.summary(),
            concurrency: state.conc.summary(),
            checkpoint_concurrency: state.ckpt_conc.summary(),
            recovery_concurrency: state.rec_conc.summary(),
            digest,
            ledgers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedIntervalPolicy;
    use crate::workload::{Seg, VecTimeline, Workload, WorkloadConfig};

    fn base_config(machines: usize) -> PoolSimConfig {
        PoolSimConfig {
            machines,
            fabric: FabricConfig {
                nic_mb_s: 4.0,
                uplink_mb_s: 16.0,
                core_mb_s: 256.0,
                rack_size: 8,
            },
            image_mb: 512.0,
            window: 100_000.0,
            count_recovery_bytes: true,
            keep_ledgers: true,
            stress_insertion_order: false,
        }
    }

    #[test]
    fn validates_config() {
        let mut c = base_config(0);
        assert!(c.validate().is_err());
        c = base_config(4);
        c.window = f64::NAN;
        assert!(c.validate().is_err());
        c = base_config(4);
        c.image_mb = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn single_machine_hand_computed() {
        // One segment [0, 1000), nic 4 MB/s, 512 MB image (c = 128 s),
        // fixed 200 s intervals: recovery [0, 128), then commits at 456
        // and 784; the third interval's checkpoint starts at 984 and is
        // cut off by the segment end at 1000 (16 s → 64 MB partial).
        let cfg = base_config(1);
        let t = VecTimeline(vec![vec![Seg {
            start: 0.0,
            end: 1000.0,
        }]]);
        let r = PoolSim::run(&cfg, &t, &mut FixedIntervalPolicy(200.0)).unwrap();
        assert_eq!(r.cycle.recoveries_completed, 1);
        assert_eq!(r.cycle.checkpoints_committed, 2);
        assert_eq!(r.cycle.checkpoints_attempted, 3);
        assert_eq!(r.cycle.failures, 1);
        assert_eq!(r.cycle.useful_seconds, 400.0);
        assert_eq!(r.cycle.partial_megabytes, 64.0);
        assert_eq!(r.cycle.megabytes, 512.0 + 2.0 * 512.0 + 64.0);
        assert_eq!(r.cycle.total_seconds, 1000.0);
        assert!(r.cycle.conservation_residual().abs() < 1e-9);
        assert_eq!(
            r.events,
            1 /*place*/ + 3 /*completions*/ + 3 /*workends*/ + 1 /*segend*/
        );
        assert_eq!(r.transfers_completed, 3);
    }

    #[test]
    fn contention_stretches_transfers_across_racks() {
        // 16 machines, one rack of 8 saturating its uplink.
        let mut cfg = base_config(16);
        cfg.fabric.core_mb_s = 24.0; // force core contention too
        cfg.window = 50_000.0;
        let w = Workload::new(WorkloadConfig {
            machines: 16,
            rack_size: 8,
            unique_streams: 2,
            ..WorkloadConfig::default()
        })
        .unwrap();
        let r = PoolSim::run(&cfg, &w, &mut FixedIntervalPolicy(600.0)).unwrap();
        assert!(r.transfers_completed > 0);
        assert!(
            r.mean_transfer_seconds > cfg.nominal_cost(),
            "contention must stretch transfers: {} vs nominal {}",
            r.mean_transfer_seconds,
            cfg.nominal_cost()
        );
        assert!(r.core_utilization.max <= 1.0 + 1e-9);
        assert!(r.concurrency.max > 1.0);
        assert!(r.cycle.conservation_residual().abs() < 1e-6);
    }

    #[test]
    fn replay_is_bitwise_deterministic() {
        let mut cfg = base_config(64);
        cfg.window = 30_000.0;
        let w = Workload::new(WorkloadConfig {
            machines: 64,
            rack_size: 8,
            unique_streams: 4,
            ..WorkloadConfig::default()
        })
        .unwrap();
        let a = PoolSim::run(&cfg, &w, &mut FixedIntervalPolicy(400.0)).unwrap();
        let mut rev = cfg;
        rev.stress_insertion_order = true;
        let b = PoolSim::run(&rev, &w, &mut FixedIntervalPolicy(400.0)).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.cycle, b.cycle);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn ledgers_only_kept_on_request() {
        let mut cfg = base_config(4);
        cfg.window = 10_000.0;
        cfg.keep_ledgers = false;
        let t = VecTimeline(vec![
            vec![Seg {
                start: 0.0,
                end: 900.0,
            }];
            4
        ]);
        let r = PoolSim::run(&cfg, &t, &mut FixedIntervalPolicy(100.0)).unwrap();
        assert!(r.ledgers.is_empty());
        assert!(r.cycle.total_seconds > 0.0);
    }

    #[test]
    fn goodput_and_efficiency_are_fractions() {
        let mut cfg = base_config(8);
        cfg.window = 20_000.0;
        let w = Workload::new(WorkloadConfig {
            machines: 8,
            rack_size: 8,
            unique_streams: 1,
            ..WorkloadConfig::default()
        })
        .unwrap();
        let r = PoolSim::run(&cfg, &w, &mut FixedIntervalPolicy(500.0)).unwrap();
        assert!((0.0..=1.0).contains(&r.efficiency()));
        assert!((0.0..=1.0).contains(&r.goodput()));
        assert!(r.goodput() <= r.efficiency() + 1e-9);
    }
}
