//! Incremental max-min fair bandwidth sharing on the symmetric
//! machine → rack-uplink → core tree.
//!
//! # The reduction
//!
//! Every transfer is bounded by its machine NIC (`nic`), its rack uplink
//! (`uplink`, shared by the rack's `k` active transfers) and the core
//! (`core`, shared by everyone). With uniform capacities, max-min
//! fairness collapses per rack: all `k` flows of a rack receive the same
//! rate `min(s_k, λ)` with the rack-local cap `s_k = min(nic, uplink/k)`
//! and a single core water level `λ` solving
//!
//! ```text
//!   Σ_k  cnt[k] · k · min(s_k, λ)  =  core        (when demand > core)
//! ```
//!
//! where `cnt[k]` counts racks with exactly `k` active flows. The whole
//! fair-share state of a million-machine pool is therefore an
//! O(rack_size) histogram, and an arrival or departure re-solves `λ` by
//! water-filling over at most `rack_size` buckets — the "affected
//! subtree" recomputation the rescan engine lacks.
//!
//! # Completions in volume space
//!
//! Event-driven engines usually key transfer completions by time and
//! reindex every in-flight transfer whenever `λ` moves. Instead each
//! bucket carries a service integral `A_k(t) = ∫ min(s_k, λ(u)) du` —
//! the cumulative megabytes served *per flow* to any rack that stayed at
//! count `k`. A rack maintains its own per-flow volume axis `v_r`,
//! rebased lazily against `A_k` whenever the rack's count changes, so a
//! flow that starts at axis value `v` finishes at the **constant** key
//! `v + image`. Flows sit in a per-rack min-heap on that key; racks sit
//! in a per-bucket min-heap on the equivalent `A_k`-axis deadline; and
//! the next completion anywhere is the minimum over ≤ `rack_size`
//! bucket heads, each a constant-time projection `t + (F − A_k)/rate_k`.
//! Rate changes move every deadline *in lockstep per bucket*, so no key
//! ever needs rewriting.
//!
//! Departures (evictions mid-transfer) invalidate heap entries by
//! generation counter; stale entries are discarded when they surface.

use crate::{PoolError, Result};

/// Capacities of the symmetric two-level tree.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct FabricConfig {
    /// Per-machine NIC rate, MB/s.
    pub nic_mb_s: f64,
    /// Per-rack uplink rate, MB/s, shared by the rack's active flows.
    pub uplink_mb_s: f64,
    /// Core capacity, MB/s, shared by all active flows.
    pub core_mb_s: f64,
    /// Machines per rack (the last rack may be partial).
    pub rack_size: usize,
}

impl FabricConfig {
    /// Check capacities are positive finite and the rack size nonzero.
    pub fn validate(&self) -> Result<()> {
        for (value, what) in [
            (self.nic_mb_s, "nic rate"),
            (self.uplink_mb_s, "uplink rate"),
            (self.core_mb_s, "core rate"),
        ] {
            if !(value.is_finite() && value > 0.0) {
                let _ = what;
                return Err(PoolError::InvalidConfig(
                    "fabric rates must be positive and finite",
                ));
            }
        }
        if self.rack_size == 0 {
            return Err(PoolError::InvalidConfig("rack_size must be nonzero"));
        }
        Ok(())
    }

    /// The rate one flow gets on an otherwise idle fabric.
    pub fn uncontended_mb_s(&self) -> f64 {
        self.nic_mb_s.min(self.uplink_mb_s).min(self.core_mb_s)
    }
}

/// A flow's completion key on its rack's volume axis. Min-heap by
/// `(key, machine)`.
#[derive(Debug, Clone, Copy)]
struct FlowEntry {
    key: f64,
    machine: u32,
    gen: u32,
}

impl PartialEq for FlowEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for FlowEntry {}
impl PartialOrd for FlowEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FlowEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `std::collections::BinaryHeap` is a max-heap.
        other
            .key
            .total_cmp(&self.key)
            .then(other.machine.cmp(&self.machine))
    }
}

/// A rack's earliest completion projected onto its bucket's `A_k` axis.
/// Min-heap by `(deadline, rack)`.
#[derive(Debug, Clone, Copy)]
struct RackEntry {
    deadline: f64,
    rack: u32,
    gen: u32,
}

impl PartialEq for RackEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for RackEntry {}
impl PartialOrd for RackEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RackEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .total_cmp(&self.deadline)
            .then(other.rack.cmp(&self.rack))
    }
}

/// The incremental fair-share state.
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    now: f64,

    // Per rack.
    active: Vec<u32>,
    /// Per-flow volume axis: cumulative MB served to each concurrent
    /// flow of this rack, rebased at the last rack-touching event.
    volume: Vec<f64>,
    /// `A_k` snapshot at the last rebase (k = the rack's current count).
    snapshot: Vec<f64>,
    rack_gen: Vec<u32>,
    flows: Vec<std::collections::BinaryHeap<FlowEntry>>,

    // Per machine.
    flow_gen: Vec<u32>,

    // Per bucket k (index 0 unused).
    /// Service integral `A_k`.
    acc: Vec<f64>,
    /// Rack-local per-flow cap `s_k = min(nic, uplink/k)`.
    cap: Vec<f64>,
    /// Racks currently holding exactly `k` active flows.
    cnt: Vec<u32>,
    /// Current per-flow rate `min(s_k, λ)`.
    rate: Vec<f64>,
    racks_by_deadline: Vec<std::collections::BinaryHeap<RackEntry>>,

    total_flows: u64,
}

impl Fabric {
    /// A fabric for `machines` machines packed into
    /// `ceil(machines / rack_size)` racks.
    pub fn new(config: FabricConfig, machines: usize) -> Result<Self> {
        config.validate()?;
        let racks = machines.div_ceil(config.rack_size).max(1);
        let k_max = config.rack_size;
        Ok(Fabric {
            config,
            now: 0.0,
            active: vec![0; racks],
            volume: vec![0.0; racks],
            snapshot: vec![0.0; racks],
            rack_gen: vec![0; racks],
            flows: (0..racks)
                .map(|_| std::collections::BinaryHeap::new())
                .collect(),
            flow_gen: vec![0; machines],
            acc: vec![0.0; k_max + 1],
            cap: (0..=k_max)
                .map(|k| {
                    if k == 0 {
                        0.0
                    } else {
                        config.nic_mb_s.min(config.uplink_mb_s / k as f64)
                    }
                })
                .collect(),
            cnt: vec![0; k_max + 1],
            rate: vec![0.0; k_max + 1],
            racks_by_deadline: (0..=k_max)
                .map(|_| std::collections::BinaryHeap::new())
                .collect(),
            total_flows: 0,
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Flows currently in flight.
    pub fn active_flows(&self) -> u64 {
        self.total_flows
    }

    /// Racks with at least one flow in flight.
    pub fn active_racks(&self) -> u32 {
        self.cnt[1..].iter().sum()
    }

    /// Total racks.
    pub fn racks(&self) -> usize {
        self.active.len()
    }

    /// Aggregate MB/s currently crossing the core.
    pub fn core_rate(&self) -> f64 {
        let mut total = 0.0;
        for k in 1..self.cnt.len() {
            if self.cnt[k] > 0 {
                total += self.cnt[k] as f64 * k as f64 * self.rate[k];
            }
        }
        total
    }

    /// Visit every active bucket: `(flows per rack, racks, per-flow
    /// MB/s)`. The engine's time-weighted link statistics read this.
    pub fn for_each_active_bucket(&self, mut f: impl FnMut(usize, u32, f64)) {
        for k in 1..self.cnt.len() {
            if self.cnt[k] > 0 {
                f(k, self.cnt[k], self.rate[k]);
            }
        }
    }

    /// Advance virtual time to `t`, accruing each bucket's service
    /// integral at the current (piecewise-constant) rates.
    pub fn advance(&mut self, t: f64) {
        let dt = t - self.now;
        debug_assert!(dt >= 0.0, "fabric time must not go backwards");
        if dt > 0.0 {
            for k in 1..self.cnt.len() {
                if self.cnt[k] > 0 {
                    self.acc[k] += self.rate[k] * dt;
                }
            }
        }
        self.now = t;
    }

    /// The per-flow volume axis of `rack` at the current time. The
    /// difference of two readings brackets the MB served to each of the
    /// rack's concurrent flows in between (while the caller's flow was
    /// active).
    pub fn flow_volume(&self, rack: u32) -> f64 {
        let r = rack as usize;
        let k = self.active[r] as usize;
        if k == 0 {
            self.volume[r]
        } else {
            self.volume[r] + (self.acc[k] - self.snapshot[r])
        }
    }

    /// Start a transfer of `image_mb` for `machine` on `rack`. Returns
    /// the rack's volume-axis value at the start (subtract it from a
    /// later [`flow_volume`](Self::flow_volume) reading to get MB
    /// served).
    pub fn start_flow(&mut self, machine: u32, rack: u32, image_mb: f64) -> f64 {
        let r = rack as usize;
        let k_old = self.active[r] as usize;
        self.rebase(r, k_old, k_old + 1);
        let v = self.volume[r];
        self.flows[r].push(FlowEntry {
            key: v + image_mb,
            machine,
            gen: self.flow_gen[machine as usize],
        });
        self.total_flows += 1;
        self.reindex_rack(r);
        self.resolve();
        v
    }

    /// End `machine`'s transfer on `rack` (completion or eviction).
    pub fn end_flow(&mut self, machine: u32, rack: u32) {
        let r = rack as usize;
        let k_old = self.active[r] as usize;
        debug_assert!(k_old > 0, "end_flow on an idle rack");
        self.flow_gen[machine as usize] = self.flow_gen[machine as usize].wrapping_add(1);
        self.rebase(r, k_old, k_old - 1);
        self.total_flows -= 1;
        self.reindex_rack(r);
        self.resolve();
    }

    /// Move rack `r` from bucket `k_old` to `k_new`, carrying its
    /// per-flow volume axis across the bucket change.
    fn rebase(&mut self, r: usize, k_old: usize, k_new: usize) {
        if k_old > 0 {
            self.volume[r] += self.acc[k_old] - self.snapshot[r];
            self.cnt[k_old] -= 1;
        }
        if k_new > 0 {
            self.cnt[k_new] += 1;
            self.snapshot[r] = self.acc[k_new];
        }
        self.active[r] = k_new as u32;
        self.rack_gen[r] = self.rack_gen[r].wrapping_add(1);
    }

    /// Re-register rack `r`'s earliest completion in its bucket's heap.
    fn reindex_rack(&mut self, r: usize) {
        let k = self.active[r] as usize;
        if k == 0 {
            return;
        }
        // Purge flows that ended while buried in the heap.
        while let Some(head) = self.flows[r].peek() {
            if head.gen == self.flow_gen[head.machine as usize] {
                break;
            }
            self.flows[r].pop();
        }
        let Some(head) = self.flows[r].peek() else {
            debug_assert!(false, "rack with active flows has an empty flow heap");
            return;
        };
        // Deadline on the A_k axis: the head finishes when
        // `A_k - snapshot == head.key - volume`.
        let deadline = head.key - self.volume[r] + self.snapshot[r];
        let heap = &mut self.racks_by_deadline[k];
        heap.push(RackEntry {
            deadline,
            rack: r as u32,
            gen: self.rack_gen[r],
        });
        // Stale-entry bloat control: rebuild when mostly garbage.
        if heap.len() > 64 && heap.len() as u32 > 4 * self.cnt[k] {
            let live: Vec<RackEntry> = heap
                .drain()
                .filter(|e| e.gen == self.rack_gen[e.rack as usize])
                .collect();
            heap.extend(live);
        }
    }

    /// Re-solve the core water level `λ` and refresh per-bucket rates.
    /// Water-filling over buckets in ascending per-flow cap (descending
    /// `k`): O(rack_size).
    fn resolve(&mut self) {
        let core = self.config.core_mb_s;
        let mut demand = 0.0;
        let mut flows = 0.0;
        for k in 1..self.cnt.len() {
            if self.cnt[k] > 0 {
                demand += self.cnt[k] as f64 * k as f64 * self.cap[k];
                flows += self.cnt[k] as f64 * k as f64;
            }
        }
        let lambda = if demand <= core {
            f64::INFINITY
        } else {
            let mut remaining = core;
            let mut unfilled = flows;
            let mut level = 0.0;
            for k in (1..self.cnt.len()).rev() {
                if self.cnt[k] == 0 {
                    continue;
                }
                let m = self.cnt[k] as f64 * k as f64;
                level = remaining / unfilled;
                if level <= self.cap[k] {
                    break;
                }
                remaining -= m * self.cap[k];
                unfilled -= m;
            }
            level
        };
        for k in 1..self.cnt.len() {
            self.rate[k] = if self.cnt[k] > 0 {
                self.cap[k].min(lambda)
            } else {
                0.0
            };
        }
    }

    /// The earliest transfer completion anywhere: `(time, machine)`.
    /// Ties across racks break deterministically by machine id.
    pub fn next_completion(&mut self) -> Option<(f64, u32)> {
        let mut best: Option<(f64, u32)> = None;
        for k in 1..self.cnt.len() {
            if self.cnt[k] == 0 {
                continue;
            }
            // Purge stale rack entries off the top.
            let rack = loop {
                let Some(head) = self.racks_by_deadline[k].peek() else {
                    break None;
                };
                if head.gen == self.rack_gen[head.rack as usize]
                    && self.active[head.rack as usize] as usize == k
                {
                    break Some(*head);
                }
                self.racks_by_deadline[k].pop();
            };
            let Some(entry) = rack else { continue };
            let rate = self.rate[k];
            if rate <= 0.0 {
                continue;
            }
            let t = self.now + ((entry.deadline - self.acc[k]) / rate).max(0.0);
            let r = entry.rack as usize;
            let machine = self.flows[r]
                .peek()
                .expect("live rack entry has a head")
                .machine;
            if best.is_none_or(|(bt, bm)| (t, machine) < (bt, bm)) {
                best = Some((t, machine));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fab(nic: f64, up: f64, core: f64, rack_size: usize, machines: usize) -> Fabric {
        Fabric::new(
            FabricConfig {
                nic_mb_s: nic,
                uplink_mb_s: up,
                core_mb_s: core,
                rack_size,
            },
            machines,
        )
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_configs() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(Fabric::new(
                FabricConfig {
                    nic_mb_s: bad,
                    uplink_mb_s: 1.0,
                    core_mb_s: 1.0,
                    rack_size: 4,
                },
                8,
            )
            .is_err());
        }
        assert!(Fabric::new(
            FabricConfig {
                nic_mb_s: 1.0,
                uplink_mb_s: 1.0,
                core_mb_s: 1.0,
                rack_size: 0,
            },
            8,
        )
        .is_err());
    }

    #[test]
    fn single_flow_runs_at_the_uncontended_rate() {
        let mut f = fab(4.0, 100.0, 1000.0, 8, 16);
        f.start_flow(3, 0, 512.0);
        let (t, m) = f.next_completion().unwrap();
        assert_eq!(m, 3);
        assert_eq!(t, 128.0); // 512 MB at nic = 4 MB/s, exactly.
        f.advance(t);
        assert_eq!(f.flow_volume(0), 512.0);
    }

    #[test]
    fn rack_uplink_is_shared_fairly() {
        // nic 10, uplink 8: two flows in one rack get 4 each.
        let mut f = fab(10.0, 8.0, 1000.0, 4, 8);
        f.start_flow(0, 0, 80.0);
        f.start_flow(1, 0, 80.0);
        f.advance(10.0);
        // 10 s at 4 MB/s each.
        assert!((f.flow_volume(0) - 40.0).abs() < 1e-12);
        assert!((f.core_rate() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn core_water_level_caps_across_racks() {
        // Two racks, one flow each, nic 10, uplink 10, core 8: λ = 4.
        let mut f = fab(10.0, 10.0, 8.0, 4, 8);
        f.start_flow(0, 0, 100.0);
        f.start_flow(4, 1, 100.0);
        assert!((f.core_rate() - 8.0).abs() < 1e-12);
        f.advance(5.0);
        assert!((f.flow_volume(0) - 20.0).abs() < 1e-12);
        assert!((f.flow_volume(1) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn water_filling_respects_small_caps() {
        // Rack 0 has 4 flows (cap 10/4 = 2.5 each), rack 1 has 1 flow
        // (cap 10). Core 14 > 5 × 2.5-equal-share: rack 0's flows are
        // cap-bound at 2.5 (10 total) and the leftover 4 MB/s is the
        // water level for the lone flow.
        let mut f = fab(100.0, 10.0, 14.0, 4, 8);
        for m in 0..4 {
            f.start_flow(m, 0, 100.0);
        }
        f.start_flow(4, 1, 100.0);
        let mut rates = Vec::new();
        f.for_each_active_bucket(|k, racks, rate| rates.push((k, racks, rate)));
        assert_eq!(rates.len(), 2);
        let (_, _, r1) = rates.iter().find(|(k, _, _)| *k == 1).copied().unwrap();
        let (_, _, r4) = rates.iter().find(|(k, _, _)| *k == 4).copied().unwrap();
        assert!((r4 - 2.5).abs() < 1e-12, "rack-capped flows: {r4}");
        assert!((r1 - 4.0).abs() < 1e-12, "water level: {r1}");
        assert!((f.core_rate() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn equal_share_below_every_cap_is_uniform() {
        // Same racks, core 12: the equal share 12/5 = 2.4 sits below
        // both caps (2.5 and 10), so max-min gives every flow 2.4 —
        // including the lone flow, which fairness does NOT let absorb
        // the slack the capped rack leaves behind.
        let mut f = fab(100.0, 10.0, 12.0, 4, 8);
        for m in 0..4 {
            f.start_flow(m, 0, 100.0);
        }
        f.start_flow(4, 1, 100.0);
        let mut rates = Vec::new();
        f.for_each_active_bucket(|k, racks, rate| rates.push((k, racks, rate)));
        for &(_, _, r) in &rates {
            assert!((r - 2.4).abs() < 1e-12, "uniform water level: {r}");
        }
        assert!((f.core_rate() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn completions_survive_rate_changes_without_rekeying() {
        // One flow alone at 4 MB/s; halfway through a second flow joins
        // its rack (uplink 4 → 2 each); the first completion slides out.
        let mut f = fab(10.0, 4.0, 1000.0, 4, 8);
        f.start_flow(0, 0, 400.0); // alone: 100 s
        let (t1, _) = f.next_completion().unwrap();
        assert_eq!(t1, 100.0);
        f.advance(50.0);
        f.start_flow(1, 0, 400.0);
        let (t2, m2) = f.next_completion().unwrap();
        // 200 MB left at 2 MB/s → t = 150.
        assert_eq!(m2, 0);
        assert!((t2 - 150.0).abs() < 1e-9);
        f.advance(t2);
        f.end_flow(0, 0);
        // Flow 1: 100 s at 2 MB/s = 200 MB of 400 served by t=150, then
        // alone at 4 MB/s → completes at 150 + 50 = 200.
        let (t3, m3) = f.next_completion().unwrap();
        assert_eq!(m3, 1);
        assert!((t3 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn evicted_flows_vanish_from_the_heaps() {
        let mut f = fab(10.0, 10.0, 1000.0, 4, 8);
        f.start_flow(0, 0, 100.0);
        f.start_flow(1, 0, 50.0);
        // Machine 1 would finish first; evict it instead.
        f.advance(2.0);
        f.end_flow(1, 0);
        let (t, m) = f.next_completion().unwrap();
        assert_eq!(m, 0);
        // 2 s at 5 MB/s = 10 MB served; 90 left alone at 10 MB/s.
        assert!((t - 11.0).abs() < 1e-9);
    }

    #[test]
    fn volume_axis_is_continuous_across_bucket_moves() {
        let mut f = fab(8.0, 8.0, 1000.0, 4, 8);
        f.start_flow(0, 0, 1000.0);
        f.advance(10.0); // 80 MB alone
        f.start_flow(1, 0, 1000.0);
        f.advance(20.0); // +40 MB each at 4 MB/s
        f.end_flow(1, 0);
        f.advance(30.0); // +80 MB alone again
        assert!((f.flow_volume(0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_tie_break_by_machine() {
        let mut f = fab(4.0, 100.0, 1000.0, 2, 8);
        // Same image, same start, different racks: exact time tie.
        f.start_flow(5, 2, 64.0);
        f.start_flow(2, 1, 64.0);
        let (t, m) = f.next_completion().unwrap();
        assert_eq!(t, 16.0);
        assert_eq!(m, 2, "ties break by machine id");
    }
}
