//! Weighted max-min fair sharing of one link across priority lanes,
//! with virtual-volume completion keys.
//!
//! The checkpoint manager multiplexes three lanes (recovery, checkpoint,
//! prefetch) over one shared link. Under weighted max-min fairness every
//! active flow in lane `l` receives `w_l·C / Σ_m n_m·w_m` — flows in a
//! heavier lane get proportionally more of the capacity `C`, flows
//! within one lane split their lane's share equally.
//!
//! Completion tracking reuses [`crate::Fabric`]'s virtual-volume trick:
//! each lane carries a service integral `A_l(t) = ∫ r_l dt` (the volume
//! delivered to one flow of that lane so far), so a flow that starts
//! when the integral reads `a` with `target` MB to move completes at the
//! constant key `a + target` on the lane's volume axis — no reindexing
//! when rates change as flows come and go. Keys sit in per-lane
//! min-heaps; departures invalidate entries by generation and stale
//! entries are discarded when they surface, exactly as in `fabric`.
//!
//! Two exact-arithmetic cases matter for the repo's differential gates
//! and are special-cased to reproduce the classic processor-sharing
//! arithmetic bitwise:
//!
//! * one active lane: each flow's rate is literally `C / n` (one IEEE
//!   divide, no weight multiplication), and
//! * all active lanes equally weighted: `C / n_total` likewise.
//!
//! In addition, a lane's integral is rebased to 0 whenever the lane
//! empties, so the first flow on an idle lane has deadline exactly
//! `target` and projected completion exactly `now + target / rate` —
//! the same float operations `chs_condor::run_contention` performs.

use crate::{PoolError, Result};
use std::collections::{BinaryHeap, HashMap};

/// A flow's completion key on its lane's volume axis. Min-heap by
/// `(deadline, id)`; `BinaryHeap` is a max-heap, so the ordering is
/// reversed.
#[derive(Debug, Clone, Copy)]
struct FlowEntry {
    deadline: f64,
    id: u64,
    gen: u64,
}

impl PartialEq for FlowEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for FlowEntry {}
impl PartialOrd for FlowEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FlowEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .total_cmp(&self.deadline)
            .then(other.id.cmp(&self.id))
    }
}

/// Live registration of one flow.
#[derive(Debug, Clone, Copy)]
struct FlowSlot {
    lane: usize,
    deadline: f64,
    gen: u64,
}

/// One shared link split across weighted priority lanes by max-min
/// fairness, with virtual-volume completion bookkeeping.
#[derive(Debug, Clone)]
pub struct WeightedFairLink {
    capacity: f64,
    weights: Vec<f64>,
    now: f64,
    /// Per-lane service integral: volume delivered to one flow of the
    /// lane since the lane's last rebase.
    acc: Vec<f64>,
    /// Per-flow rate in each lane under the current membership.
    rate: Vec<f64>,
    count: Vec<u32>,
    heaps: Vec<BinaryHeap<FlowEntry>>,
    flows: HashMap<u64, FlowSlot>,
    next_gen: u64,
}

impl WeightedFairLink {
    /// A link of `capacity_mb_s` split across `weights.len()` lanes.
    pub fn new(capacity_mb_s: f64, weights: &[f64]) -> Result<Self> {
        if !capacity_mb_s.is_finite() || capacity_mb_s <= 0.0 {
            return Err(PoolError::InvalidConfig("link capacity must be finite > 0"));
        }
        if weights.is_empty() {
            return Err(PoolError::InvalidConfig("at least one lane is required"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Err(PoolError::InvalidConfig("lane weights must be finite > 0"));
        }
        let lanes = weights.len();
        Ok(Self {
            capacity: capacity_mb_s,
            weights: weights.to_vec(),
            now: 0.0,
            acc: vec![0.0; lanes],
            rate: vec![0.0; lanes],
            count: vec![0; lanes],
            heaps: (0..lanes).map(|_| BinaryHeap::new()).collect(),
            flows: HashMap::new(),
            next_gen: 0,
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The link capacity, MB/s.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Active flows in `lane`.
    pub fn count(&self, lane: usize) -> u32 {
        self.count[lane]
    }

    /// Active flows across all lanes.
    pub fn active(&self) -> u32 {
        self.count.iter().sum()
    }

    /// The per-flow rate currently in effect in `lane` (0 when idle).
    pub fn rate(&self, lane: usize) -> f64 {
        self.rate[lane]
    }

    /// Whether flow `id` is registered.
    pub fn is_active(&self, id: u64) -> bool {
        self.flows.contains_key(&id)
    }

    /// Recompute per-flow rates after a membership change. The two
    /// equal-share cases use the classic single-divide arithmetic so the
    /// manager's differential gates against `run_contention` hold
    /// bitwise; the general case applies the weighted water level.
    fn resolve(&mut self) {
        let total: u32 = self.count.iter().sum();
        for r in self.rate.iter_mut() {
            *r = 0.0;
        }
        if total == 0 {
            return;
        }
        let active: Vec<usize> = (0..self.weights.len())
            .filter(|&l| self.count[l] > 0)
            .collect();
        if active.len() == 1 {
            let l = active[0];
            self.rate[l] = self.capacity / self.count[l] as f64;
            return;
        }
        let w0 = self.weights[active[0]];
        if active.iter().all(|&l| self.weights[l] == w0) {
            let shared = self.capacity / total as f64;
            for &l in &active {
                self.rate[l] = shared;
            }
            return;
        }
        let denom: f64 = active
            .iter()
            .map(|&l| self.count[l] as f64 * self.weights[l])
            .sum();
        let level = self.capacity / denom;
        for &l in &active {
            self.rate[l] = self.weights[l] * level;
        }
    }

    /// Advance virtual time by `dt`, accruing service volume on every
    /// active lane.
    pub fn advance_by(&mut self, dt: f64) {
        self.now += dt;
        for l in 0..self.weights.len() {
            if self.count[l] > 0 {
                self.acc[l] += self.rate[l] * dt;
            }
        }
    }

    /// Register flow `id` on `lane` with `target_mb` to move. Replaces
    /// any prior registration of the same id. When the lane was idle its
    /// volume axis is rebased to 0 first, so the flow's deadline is
    /// exactly `target_mb`.
    pub fn start_flow(&mut self, id: u64, lane: usize, target_mb: f64) {
        if self.flows.contains_key(&id) {
            self.end_flow(id);
        }
        if self.count[lane] == 0 {
            self.acc[lane] = 0.0;
            self.heaps[lane].clear();
        }
        self.next_gen += 1;
        let deadline = self.acc[lane] + target_mb;
        self.flows.insert(
            id,
            FlowSlot {
                lane,
                deadline,
                gen: self.next_gen,
            },
        );
        self.heaps[lane].push(FlowEntry {
            deadline,
            id,
            gen: self.next_gen,
        });
        self.count[lane] += 1;
        self.resolve();
    }

    /// Deregister flow `id` (completion, fault, or eviction). Returns
    /// false when the id was not registered. An emptied lane's volume
    /// axis is rebased to 0.
    pub fn end_flow(&mut self, id: u64) -> bool {
        let Some(slot) = self.flows.remove(&id) else {
            return false;
        };
        let l = slot.lane;
        self.count[l] -= 1;
        if self.count[l] == 0 {
            self.acc[l] = 0.0;
            self.heaps[l].clear();
        }
        self.resolve();
        true
    }

    /// Megabytes flow `id` still has to move.
    pub fn remaining_mb(&self, id: u64) -> Option<f64> {
        let slot = self.flows.get(&id)?;
        Some(slot.deadline - self.acc[slot.lane])
    }

    /// The absolute time flow `id` completes if membership stays as-is.
    /// For the first flow on a rebased lane this is exactly
    /// `now + target / rate` — the classic arithmetic.
    pub fn projected_completion(&self, id: u64) -> Option<f64> {
        let slot = self.flows.get(&id)?;
        let rate = self.rate[slot.lane];
        debug_assert!(rate > 0.0, "registered flow in an idle lane");
        Some(self.now + (slot.deadline - self.acc[slot.lane]) / rate)
    }

    /// The earliest projected completion across all lanes, with the
    /// completing flow's id. Lazily purges heap entries invalidated by
    /// [`Self::end_flow`] or re-registration.
    pub fn next_completion(&mut self) -> Option<(f64, u64)> {
        let mut best: Option<(f64, u64)> = None;
        for l in 0..self.weights.len() {
            if self.count[l] == 0 {
                continue;
            }
            let head = loop {
                match self.heaps[l].peek() {
                    None => break None,
                    Some(e) => {
                        let live = self.flows.get(&e.id).is_some_and(|slot| slot.gen == e.gen);
                        if live {
                            break Some(*e);
                        }
                        self.heaps[l].pop();
                    }
                }
            };
            let Some(head) = head else {
                debug_assert!(false, "lane with active flows has an empty heap");
                continue;
            };
            let t = self.now + (head.deadline - self.acc[l]) / self.rate[l];
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, head.id));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_rate_is_classic_processor_sharing() {
        let mut link = WeightedFairLink::new(500.0 / 110.0, &[4.0, 2.0, 1.0]).unwrap();
        link.start_flow(0, 1, 500.0);
        // One flow on one lane: the full capacity, bitwise.
        assert_eq!(link.rate(1), 500.0 / 110.0);
        link.start_flow(1, 1, 500.0);
        link.start_flow(2, 1, 500.0);
        // n flows on one lane: exactly capacity / n — one IEEE divide,
        // no weight arithmetic, matching `run_contention`.
        assert_eq!(link.rate(1), (500.0 / 110.0) / 3.0);
    }

    #[test]
    fn equal_weights_collapse_to_flat_sharing() {
        let mut link = WeightedFairLink::new(10.0, &[1.0, 1.0, 1.0]).unwrap();
        link.start_flow(0, 0, 100.0);
        link.start_flow(1, 1, 100.0);
        link.start_flow(2, 1, 100.0);
        link.start_flow(3, 2, 100.0);
        for l in 0..3 {
            assert_eq!(link.rate(l), 10.0 / 4.0);
        }
    }

    #[test]
    fn weighted_rates_split_by_lane_weight_and_conserve_capacity() {
        let mut link = WeightedFairLink::new(9.0, &[4.0, 2.0, 1.0]).unwrap();
        link.start_flow(0, 0, 100.0);
        link.start_flow(1, 1, 100.0);
        link.start_flow(2, 1, 100.0);
        link.start_flow(3, 2, 100.0);
        // Water level λ = 9 / (1·4 + 2·2 + 1·1) = 1.
        assert!((link.rate(0) - 4.0).abs() < 1e-12);
        assert!((link.rate(1) - 2.0).abs() < 1e-12);
        assert!((link.rate(2) - 1.0).abs() < 1e-12);
        let served: f64 = (0..3).map(|l| link.count(l) as f64 * link.rate(l)).sum();
        assert!((served - 9.0).abs() < 1e-12, "capacity conserved: {served}");
        // Recovery (heaviest) finishes first despite equal targets.
        let (_, id) = link.next_completion().unwrap();
        assert_eq!(id, 0);
    }

    #[test]
    fn rebase_makes_first_flow_deadline_exact() {
        let mut link = WeightedFairLink::new(4.0, &[2.0, 1.0]).unwrap();
        // Dirty the lane's integral, then drain it.
        link.start_flow(0, 0, 64.0);
        link.advance_by(3.0);
        link.end_flow(0);
        // A fresh flow on the re-idled lane: completion is exactly
        // now + target / rate (0.0 + x == x bitwise).
        link.start_flow(1, 0, 64.0);
        assert_eq!(link.remaining_mb(1), Some(64.0));
        assert_eq!(link.projected_completion(1), Some(3.0 + 64.0 / 4.0));
    }

    #[test]
    fn completions_survive_rate_changes_without_reindexing() {
        let mut link = WeightedFairLink::new(2.0, &[1.0, 1.0]).unwrap();
        link.start_flow(0, 0, 10.0); // alone: 2 MB/s → done at t=5
        link.advance_by(2.0); // 4 MB moved, 6 left
        link.start_flow(1, 0, 20.0); // now 2 flows at 1 MB/s each
                                     // Flow 0 needs 6 more seconds at 1 MB/s → t=8.
        let (t, id) = link.next_completion().unwrap();
        assert_eq!(id, 0);
        assert!((t - 8.0).abs() < 1e-12, "t = {t}");
        assert!((link.remaining_mb(0).unwrap() - 6.0).abs() < 1e-12);
        // Drive to the completion and swap the membership again.
        link.advance_by(t - link.now());
        link.end_flow(0);
        // Flow 1: moved 6 MB at 1 MB/s alongside flow 0, 14 left alone
        // at 2 MB/s → done at 8 + 7 = 15.
        let (t, id) = link.next_completion().unwrap();
        assert_eq!(id, 1);
        assert!((t - 15.0).abs() < 1e-12, "t = {t}");
    }

    #[test]
    fn stale_heap_entries_are_purged() {
        let mut link = WeightedFairLink::new(1.0, &[1.0]).unwrap();
        link.start_flow(0, 0, 5.0);
        link.start_flow(1, 0, 50.0);
        link.end_flow(0); // heap still holds flow 0's entry
        let (_, id) = link.next_completion().unwrap();
        assert_eq!(id, 1);
        // Re-registration invalidates the earlier entry by generation.
        link.start_flow(1, 0, 7.0);
        let (t, id) = link.next_completion().unwrap();
        assert_eq!(id, 1);
        assert!((t - 7.0).abs() < 1e-12, "t = {t}");
    }

    #[test]
    fn empty_and_invalid_configs_rejected() {
        assert!(WeightedFairLink::new(0.0, &[1.0]).is_err());
        assert!(WeightedFairLink::new(1.0, &[]).is_err());
        assert!(WeightedFairLink::new(1.0, &[1.0, 0.0]).is_err());
        assert!(WeightedFairLink::new(1.0, &[f64::NAN]).is_err());
        let mut link = WeightedFairLink::new(1.0, &[1.0]).unwrap();
        assert!(link.next_completion().is_none());
        assert!(!link.end_flow(9));
        assert!(link.remaining_mb(9).is_none());
    }
}
