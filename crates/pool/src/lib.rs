//! Pool-scale discrete-event simulation: 10⁵–10⁶ machines contending on
//! a hierarchical network (machine NIC → rack uplink → core).
//!
//! [`chs_condor`]'s `run_contention` answers the paper's §5.2 conjecture
//! for a handful of jobs on one link, but it rescans every job on every
//! bandwidth change — O(jobs) per event — and pre-materializes every
//! machine's availability timeline. Neither survives a six-figure pool.
//! This crate keeps the *physics* (max-min fair bandwidth sharing, the
//! same [`chs_cycle::CycleMachine`] per-machine state machine, the same
//! ledger) and replaces the engine:
//!
//! * **Calendar-queue event heap** ([`calendar`]): time-keyed events
//!   (placement, work-interval end, segment end) live in a bucketed ring
//!   with O(1) amortized insert/pop; stale entries are invalidated by
//!   per-machine generation counters instead of being removed.
//! * **Structure-of-arrays machine state** ([`engine`]): phase clocks,
//!   segment bounds, pending-transfer bytes and policy measurements sit
//!   in parallel `Vec`s indexed by machine id — no per-machine boxes, no
//!   steady-state allocation.
//! * **Incremental max-min fair sharing** ([`fabric`]): for the symmetric
//!   machine → rack → core tree, every flow in a rack with `k` active
//!   transfers gets `min(nic, uplink/k, λ)`, where the core water level
//!   `λ` depends only on the *histogram* of rack flow-counts. An
//!   arrival/departure therefore touches its own rack plus an
//!   O(rack_size) bucket summary — never the other 10⁶ machines.
//! * **Virtual-volume completions** ([`fabric`]): per-bucket service
//!   integrals `A_k(t) = ∫ min(s_k, λ) dt` turn "when does this transfer
//!   finish?" into a *constant* key in volume space, so completions sit
//!   in ordinary heaps and survive every rate change without reindexing.
//! * **Lazy workloads** ([`workload`]): availability segments are drawn
//!   on demand from counter-mode splitmix64 streams keyed by stable
//!   machine ids — no pre-generated timelines, and bitwise determinism
//!   regardless of event ordering or thread count.
//! * **Table-driven policies** ([`policy`]): per-machine `next_interval`
//!   decisions come from [`chs_markov::PolicyStore`] /
//!   [`chs_markov::CompressedPolicy`] snapshots (dedup + cluster sharing
//!   make a million policies affordable).
//!
//! A frozen rescan-style reference engine ([`rescan`]) generalizes the
//! `run_contention` loop to the same topology and is kept deliberately
//! naive: the `pool_bench` binary gates the calendar engine's
//! machine-events/s against it.

mod calendar;
mod engine;
mod fabric;
mod fairshare;
mod policy;
mod rescan;
mod stats;
mod workload;

pub use calendar::{CalendarQueue, Event, EventKind};
pub use engine::{PoolResult, PoolSim, PoolSimConfig};
pub use fabric::{Fabric, FabricConfig};
pub use fairshare::WeightedFairLink;
pub use policy::{
    build_policy_store, AdaptiveVaidyaPolicy, FixedIntervalPolicy, PoolPolicy,
    SchedulePolicyBridge, StoreBuildReport, StorePolicy,
};
pub use rescan::{rescan_run, RescanResult};
pub use stats::{DistSummary, TimeHistogram};
pub use workload::{Seg, Timeline, VecTimeline, Workload, WorkloadConfig};

/// Errors from pool construction or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// A configuration knob was rejected.
    InvalidConfig(&'static str),
    /// A policy had no answer for a machine (e.g. missing store entry).
    MissingPolicy { machine: u64 },
    /// An availability-model operation failed.
    Markov(chs_markov::MarkovError),
    /// A distribution fit failed.
    Dist(chs_dist::DistError),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::InvalidConfig(why) => write!(f, "invalid pool config: {why}"),
            PoolError::MissingPolicy { machine } => {
                write!(f, "no policy table for machine {machine}")
            }
            PoolError::Markov(e) => write!(f, "markov error: {e}"),
            PoolError::Dist(e) => write!(f, "dist error: {e}"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<chs_markov::MarkovError> for PoolError {
    fn from(e: chs_markov::MarkovError) -> Self {
        PoolError::Markov(e)
    }
}

impl From<chs_dist::DistError> for PoolError {
    fn from(e: chs_dist::DistError) -> Self {
        PoolError::Dist(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PoolError>;
