//! Work-interval planning for pool machines.
//!
//! The engine plans every interval through the shared
//! [`chs_cycle::guarded_interval`] composition (sanitize age → query →
//! clamp); implementations of [`PoolPolicy`] only supply the middle
//! step. Three planners cover the pool's uses:
//!
//! * [`StorePolicy`] — the scale path: per-machine `T_opt(age)` lookups
//!   against a [`PolicyStore`] epoch snapshot of compressed tables,
//!   built once by [`build_policy_store`] with the same dedup + cluster
//!   sharing waves as `chs-sched`'s publish.
//! * [`AdaptiveVaidyaPolicy`] — the `run_contention` protocol: every
//!   completed transfer's measured duration becomes the `C = R` of the
//!   next exact `T_opt`; used by the small-pool differential gates.
//! * [`FixedIntervalPolicy`] / [`SchedulePolicyBridge`] — deterministic
//!   schedules for identity tests against the closed-form executor.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use chs_dist::FittedModel;
use chs_markov::{
    CheckpointCosts, ClusterKey, CompressedPolicy, CompressionConfig, DedupKey, PolicyCache,
    PolicyStore, VaidyaModel,
};
use rayon::prelude::*;

use crate::{PoolError, Result};

/// Plans the next work interval for a machine.
pub trait PoolPolicy {
    /// The planned interval for `machine` at (sanitized) `age`, given
    /// the last measured transfer duration. The engine clamps the
    /// result through [`chs_cycle::clamp_interval`].
    fn next_interval(&mut self, machine: u32, age: f64, measured_cost_s: f64) -> Result<f64>;

    /// Human-readable planner name for reports.
    fn label(&self) -> String;
}

/// Always plans the same interval.
#[derive(Debug, Clone, Copy)]
pub struct FixedIntervalPolicy(pub f64);

impl PoolPolicy for FixedIntervalPolicy {
    fn next_interval(&mut self, _machine: u32, _age: f64, _cost: f64) -> Result<f64> {
        Ok(self.0)
    }

    fn label(&self) -> String {
        format!("fixed({} s)", self.0)
    }
}

/// Adapts a [`chs_cycle::SchedulePolicy`] (age-only schedule) to every
/// machine of a pool.
#[derive(Debug, Clone)]
pub struct SchedulePolicyBridge<P: chs_cycle::SchedulePolicy>(pub P);

impl<P: chs_cycle::SchedulePolicy> PoolPolicy for SchedulePolicyBridge<P> {
    fn next_interval(&mut self, _machine: u32, age: f64, _cost: f64) -> Result<f64> {
        Ok(self.0.next_interval(age))
    }

    fn label(&self) -> String {
        self.0.label()
    }
}

/// The `run_contention` planning protocol: an exact Vaidya `T_opt`
/// against the machine's fitted model, with the measured cost of the
/// last transfer as the symmetric checkpoint/recovery cost.
#[derive(Debug, Clone)]
pub struct AdaptiveVaidyaPolicy {
    fits: Vec<FittedModel>,
}

impl AdaptiveVaidyaPolicy {
    /// One fitted model per machine.
    pub fn per_machine(fits: Vec<FittedModel>) -> Self {
        AdaptiveVaidyaPolicy { fits }
    }
}

impl PoolPolicy for AdaptiveVaidyaPolicy {
    fn next_interval(&mut self, machine: u32, age: f64, measured_cost_s: f64) -> Result<f64> {
        let fit = self
            .fits
            .get(machine as usize)
            .ok_or(PoolError::MissingPolicy {
                machine: machine as u64,
            })?;
        let vaidya = VaidyaModel::new(fit, CheckpointCosts::symmetric(measured_cost_s))?;
        Ok(vaidya.optimal_interval(age.max(0.0))?.work_seconds)
    }

    fn label(&self) -> String {
        "adaptive-vaidya".into()
    }
}

/// Table-driven planning from a [`PolicyStore`] epoch snapshot — the
/// only planner that amortizes to a million machines. Tables are built
/// at the fabric's nominal (uncontended) transfer cost, so the measured
/// cost is ignored by design: the store is an epoch-pinned decision
/// surface, as in the serving loop.
#[derive(Debug, Clone)]
pub struct StorePolicy {
    store: Arc<PolicyStore>,
}

impl StorePolicy {
    /// Serve intervals from `store`.
    pub fn new(store: Arc<PolicyStore>) -> Self {
        StorePolicy { store }
    }

    /// The underlying snapshot.
    pub fn store(&self) -> &Arc<PolicyStore> {
        &self.store
    }
}

impl PoolPolicy for StorePolicy {
    fn next_interval(&mut self, machine: u32, age: f64, _cost: f64) -> Result<f64> {
        self.store
            .next_interval(machine as u64, age)
            .ok_or(PoolError::MissingPolicy {
                machine: machine as u64,
            })
    }

    fn label(&self) -> String {
        format!("store(epoch {})", self.store.epoch())
    }
}

/// How a [`build_policy_store`] run resolved its machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct StoreBuildReport {
    /// Machines covered by the store.
    pub machines: usize,
    /// Distinct compressed tables backing them.
    pub tables: usize,
    /// Exact table builds (including cluster rejects).
    pub builds: u64,
    /// Keys resolved by verified cluster sharing instead of a build.
    pub shared: u64,
    /// Cluster candidates whose shared surface failed verification.
    pub rejects: u64,
}

/// Build a [`PolicyStore`] for `machines` machines whose availability
/// models are `fits[stream_of(machine)]`, using the same three-wave
/// dedup + cluster-sharing construction as the scheduler's publish:
/// representatives build exactly in parallel, cell members verify
/// against the shared surface (rejects fall back to private builds),
/// and inserts happen sequentially in first-reference order so the
/// result is bitwise identical on any thread count.
pub fn build_policy_store(
    fits: &[FittedModel],
    machines: usize,
    stream_of: impl Fn(u32) -> usize,
    costs: CheckpointCosts,
    epoch: u64,
) -> Result<(Arc<PolicyStore>, StoreBuildReport)> {
    let compression = CompressionConfig::new(costs);
    let mut cache = PolicyCache::new(compression);
    let keys: Vec<DedupKey> = fits.iter().map(|m| cache.key(m)).collect();

    let mut seen: BTreeSet<&DedupKey> = BTreeSet::new();
    let mut missing: Vec<(&DedupKey, &FittedModel)> = Vec::new();
    for (model, key) in fits.iter().zip(&keys) {
        if cache.get(key).is_none() && seen.insert(key) {
            missing.push((key, model));
        }
    }

    // Coarse ln-parameter cells; the first member of a cell builds, the
    // rest try to share its surface.
    let mut rep_of_cell: BTreeMap<ClusterKey, usize> = BTreeMap::new();
    let mut member_of: Vec<Option<usize>> = Vec::with_capacity(missing.len());
    for (i, (_, model)) in missing.iter().enumerate() {
        member_of.push(match ClusterKey::new(model, &compression) {
            Some(cell) => match rep_of_cell.entry(cell) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(i);
                    None
                }
                std::collections::btree_map::Entry::Occupied(e) => Some(*e.get()),
            },
            None => None,
        });
    }

    let rep_tables: Vec<Option<Arc<CompressedPolicy>>> = (0..missing.len())
        .into_par_iter()
        .map(|i| {
            member_of[i]
                .is_none()
                .then(|| CompressedPolicy::build(missing[i].1, &compression).map(Arc::new))
                .transpose()
        })
        .collect::<chs_markov::Result<_>>()?;

    enum Resolved {
        Shared(Arc<CompressedPolicy>),
        Private(Arc<CompressedPolicy>),
    }
    let member_tables: Vec<Option<Resolved>> = (0..missing.len())
        .into_par_iter()
        .map(|i| {
            member_of[i]
                .map(|rep| {
                    let surface = rep_tables[rep].as_ref().expect("rep built in wave 1");
                    if surface.acceptable_for(missing[i].1, &compression)? {
                        Ok(Resolved::Shared(Arc::clone(surface)))
                    } else {
                        let private = CompressedPolicy::build(missing[i].1, &compression)?;
                        Ok(Resolved::Private(Arc::new(private)))
                    }
                })
                .transpose()
        })
        .collect::<chs_markov::Result<_>>()?;

    let mut builds = 0u64;
    let mut rejects = 0u64;
    for ((key, _), (rep, member)) in missing
        .iter()
        .zip(rep_tables.into_iter().zip(member_tables))
    {
        match (rep, member) {
            (Some(table), _) => {
                cache.insert((*key).clone(), table);
                builds += 1;
            }
            (None, Some(Resolved::Shared(table))) => {
                cache.insert_alias((*key).clone(), table);
            }
            (None, Some(Resolved::Private(table))) => {
                cache.insert((*key).clone(), table);
                rejects += 1;
                builds += 1;
            }
            (None, None) => unreachable!("every missing key resolves in wave 1 or 2"),
        }
    }

    let entries: Vec<(u64, Arc<CompressedPolicy>)> = (0..machines)
        .map(|m| {
            let stream = stream_of(m as u32);
            let table = cache
                .get(&keys[stream])
                .ok_or(PoolError::MissingPolicy { machine: m as u64 })?;
            Ok((m as u64, Arc::clone(table)))
        })
        .collect::<Result<_>>()?;
    let store = PolicyStore::assemble(epoch, entries)?;
    let shared = cache.counters().shared;
    let report = StoreBuildReport {
        machines,
        tables: store.stats().tables,
        builds,
        shared,
        rejects,
    };
    Ok((Arc::new(store), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chs_dist::fit::fit_model;
    use chs_dist::ModelKind;

    fn fits(n: usize) -> Vec<FittedModel> {
        (0..n)
            .map(|s| {
                let data: Vec<f64> = (0..40)
                    .map(|i| 500.0 + (s as f64 + 1.0) * 137.0 + (i as f64 * 61.0) % 900.0)
                    .collect();
                fit_model(ModelKind::Weibull, &data).unwrap()
            })
            .collect()
    }

    #[test]
    fn store_maps_every_machine_and_dedups_streams() {
        let fits = fits(3);
        let (store, report) = build_policy_store(
            &fits,
            24,
            |m| m as usize % 3,
            CheckpointCosts::symmetric(110.0),
            1,
        )
        .unwrap();
        assert_eq!(store.len(), 24);
        assert_eq!(report.machines, 24);
        assert!(report.tables <= 3);
        assert!(report.builds + report.shared >= report.tables as u64);
        // Machines of the same stream resolve to bitwise-equal answers.
        let a = store.next_interval(0, 300.0).unwrap();
        let b = store.next_interval(3, 300.0).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn store_build_is_thread_count_invariant() {
        let fits = fits(5);
        let costs = CheckpointCosts::symmetric(90.0);
        let (a, _) = build_policy_store(&fits, 40, |m| m as usize % 5, costs, 7).unwrap();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let (b, _) = pool
            .install(|| build_policy_store(&fits, 40, |m| m as usize % 5, costs, 7))
            .unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn store_policy_answers_through_the_tables() {
        let fits = fits(2);
        let (store, _) = build_policy_store(
            &fits,
            4,
            |m| m as usize % 2,
            CheckpointCosts::symmetric(110.0),
            0,
        )
        .unwrap();
        let mut policy = StorePolicy::new(store.clone());
        let t = policy.next_interval(1, 250.0, 999.0).unwrap();
        assert_eq!(
            t.to_bits(),
            store.next_interval(1, 250.0).unwrap().to_bits()
        );
        assert!(policy.next_interval(99, 0.0, 0.0).is_err());
    }

    #[test]
    fn adaptive_policy_tracks_measured_cost() {
        // The contract is the `run_contention` protocol: replan with an
        // exact Vaidya model at the measured cost. (T_opt is *not*
        // monotone in a symmetric cost — a dearer recovery also raises
        // the failure penalty — so assert equivalence, not direction.)
        let fits = fits(1);
        let mut p = AdaptiveVaidyaPolicy::per_machine(fits.clone());
        for cost in [20.0, 400.0] {
            let got = p.next_interval(0, 100.0, cost).unwrap();
            let direct = VaidyaModel::new(&fits[0], CheckpointCosts::symmetric(cost))
                .unwrap()
                .optimal_interval(100.0)
                .unwrap()
                .work_seconds;
            assert_eq!(got.to_bits(), direct.to_bits());
        }
        let cheap = p.next_interval(0, 100.0, 20.0).unwrap();
        let dear = p.next_interval(0, 100.0, 400.0).unwrap();
        assert_ne!(cheap, dear, "measured cost must influence the plan");
        assert!(p.next_interval(7, 0.0, 1.0).is_err());
    }

    #[test]
    fn fixed_policy_is_fixed() {
        let mut p = FixedIntervalPolicy(321.0);
        assert_eq!(p.next_interval(0, 0.0, 1.0).unwrap(), 321.0);
        assert_eq!(p.next_interval(9, 1e9, 1e9).unwrap(), 321.0);
    }
}
