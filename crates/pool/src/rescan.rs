//! The frozen rescan-style reference engine.
//!
//! This generalizes `chs_condor::run_contention`'s loop to the pool
//! topology and is kept **deliberately naive**: every iteration rescans
//! all machines to find the next event, recomputes the max-min fair
//! water level from scratch, and advances every placed machine — O(n)
//! per event, exactly the cost model the calendar engine replaces.
//! `pool_bench` gates the calendar engine's machine-events/s against
//! this loop, and the differential suite checks both engines agree on
//! small pools. Do not optimize this module; its slowness is the
//! baseline.

use chs_cycle::{
    clamp_interval, sanitize_age, CycleAccounting, CycleConfig, CycleMachine, CyclePhase,
    NoopObserver,
};

use crate::engine::PoolSimConfig;
use crate::policy::PoolPolicy;
use crate::workload::{Seg, Timeline};
use crate::Result;

/// Event-lumping tolerance, seconds — as in `run_contention`.
const EPS: f64 = 1e-7;
/// Transfer-completion tolerance, megabytes.
const MB_EPS: f64 = 1e-6;

/// Aggregate outcome of a rescan reference run.
#[derive(Debug, Clone)]
pub struct RescanResult {
    /// The merged cycle ledger across all machines.
    pub cycle: CycleAccounting,
    /// State transitions fired (same vocabulary as the pool engine:
    /// placements, segment ends, work ends, transfer completions).
    pub events: u64,
    /// Transfers that ran to completion.
    pub transfers_completed: u64,
    /// Per-machine ledgers when the config keeps them, else empty.
    pub ledgers: Vec<CycleAccounting>,
}

struct Machine {
    cycle: CycleMachine,
    seg: Option<Seg>,
    seg_index: u32,
    pend: Option<Seg>,
    work_until: f64, // machine-local clock
    measured_cost: f64,
}

/// Per-flow fair rates for the current instant, recomputed from scratch:
/// each flow in a rack with `k` active transfers gets
/// `min(nic, uplink/k, λ)`, with the core water level `λ` found by
/// sorting per-flow caps ascending and water-filling the core capacity.
fn fair_rates(config: &PoolSimConfig, transferring: &[bool]) -> Vec<f64> {
    let n = transferring.len();
    let rack_size = config.fabric.rack_size;
    let racks = n.div_ceil(rack_size);
    let mut per_rack = vec![0usize; racks];
    for (m, &on) in transferring.iter().enumerate() {
        if on {
            per_rack[m / rack_size] += 1;
        }
    }
    // Cap per flow by rack, then water-fill the core.
    let cap_of = |r: usize| {
        let k = per_rack[r] as f64;
        config.fabric.nic_mb_s.min(config.fabric.uplink_mb_s / k)
    };
    let mut caps: Vec<(f64, usize)> = per_rack
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k > 0)
        .map(|(r, &k)| (cap_of(r), k))
        .collect();
    let demand: f64 = caps.iter().map(|&(c, k)| c * k as f64).sum();
    let level = if demand <= config.fabric.core_mb_s {
        f64::INFINITY
    } else {
        caps.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut remaining = config.fabric.core_mb_s;
        let mut flows_left: usize = caps.iter().map(|&(_, k)| k).sum();
        let mut lambda = 0.0;
        for &(cap, k) in &caps {
            let candidate = remaining / flows_left as f64;
            if candidate <= cap {
                lambda = candidate;
                break;
            }
            remaining -= cap * k as f64;
            flows_left -= k;
            lambda = cap;
        }
        lambda
    };
    let mut rates = vec![0.0; n];
    for (m, &on) in transferring.iter().enumerate() {
        if on {
            rates[m] = cap_of(m / rack_size).min(level);
        }
    }
    rates
}

/// Run the pool through the frozen O(machines)-per-event loop.
pub fn rescan_run<T: Timeline, P: PoolPolicy>(
    config: &PoolSimConfig,
    timeline: &T,
    policy: &mut P,
) -> Result<RescanResult> {
    config.validate()?;
    let n = config.machines;
    let cycle_config = CycleConfig {
        checkpoint_cost: 0.0,
        recovery_cost: 0.0,
        image_mb: config.image_mb,
        count_recovery_bytes: config.count_recovery_bytes,
    };
    let nominal = config.nominal_cost();
    let mut ms: Vec<Machine> = (0..n as u32)
        .map(|m| Machine {
            cycle: CycleMachine::new(cycle_config),
            seg: None,
            seg_index: 0,
            pend: timeline
                .segment(m, 0, 0.0)
                .filter(|s| s.start < config.window && !s.is_empty()),
            work_until: 0.0,
            measured_cost: nominal,
        })
        .collect();
    let mut t = 0.0;
    let mut events = 0u64;
    let mut transfers_completed = 0u64;

    loop {
        // Rates for this instant (full recomputation — the point).
        let transferring: Vec<bool> = ms.iter().map(|m| m.cycle.transferring()).collect();
        let rates = fair_rates(config, &transferring);

        // Scan every machine for its next event time.
        let mut t_next = config.window;
        for (i, m) in ms.iter().enumerate() {
            let candidate = match m.cycle.phase() {
                CyclePhase::Down => m.pend.map(|s| s.start).unwrap_or(f64::INFINITY),
                CyclePhase::Work => {
                    let seg = m.seg.expect("working machine has a segment");
                    let work_abs = seg.start + m.work_until;
                    seg.end.min(work_abs)
                }
                _ => {
                    let seg = m.seg.expect("placed machine has a segment");
                    let done = if rates[i] > 0.0 {
                        t + m.cycle.transfer_remaining_mb().unwrap_or(0.0) / rates[i]
                    } else {
                        f64::INFINITY
                    };
                    seg.end.min(done)
                }
            };
            if candidate < t_next {
                t_next = candidate;
            }
        }
        let dt = (t_next - t).max(0.0);

        // Advance every placed machine (O(n) again).
        if dt > 0.0 {
            for (i, m) in ms.iter_mut().enumerate() {
                if m.cycle.phase() != CyclePhase::Down {
                    let mb = if transferring[i] {
                        (rates[i] * dt).min(m.cycle.transfer_remaining_mb().unwrap_or(0.0))
                    } else {
                        0.0
                    };
                    m.cycle.advance(dt, mb);
                }
            }
        }
        t = t_next;
        if t >= config.window {
            break;
        }

        // Fire due transitions in machine-id order; evictions first
        // within a machine, as in `run_contention`.
        for (i, m) in ms.iter_mut().enumerate() {
            if let Some(seg) = m.seg {
                if m.cycle.phase() != CyclePhase::Down && seg.end <= t + EPS {
                    m.cycle.evict(&mut NoopObserver);
                    m.seg = None;
                    events += 1;
                    let next_index = m.seg_index + 1;
                    m.pend = timeline
                        .segment(i as u32, next_index, seg.end)
                        .filter(|s| s.start < config.window && !s.is_empty());
                    m.seg_index = next_index;
                    continue;
                }
            }
            match m.cycle.phase() {
                CyclePhase::Recovery | CyclePhase::Checkpoint
                    if m.cycle.transfer_remaining_mb().unwrap_or(0.0) <= MB_EPS =>
                {
                    let leftover = m.cycle.transfer_remaining_mb().unwrap_or(0.0);
                    if leftover > 0.0 {
                        m.cycle.advance(0.0, leftover);
                    }
                    let duration = if m.cycle.phase() == CyclePhase::Recovery {
                        m.cycle.complete_recovery(&mut NoopObserver)
                    } else {
                        m.cycle.complete_checkpoint(&mut NoopObserver)
                    };
                    m.measured_cost = duration.max(1.0);
                    transfers_completed += 1;
                    events += 1;
                    plan_and_work(m, i as u32, policy)?;
                }
                CyclePhase::Work if m.cycle.age() >= m.work_until - EPS => {
                    m.cycle.start_checkpoint(&mut NoopObserver);
                    events += 1;
                }
                CyclePhase::Down => {
                    if let Some(s) = m.pend {
                        if s.start <= t + EPS {
                            m.seg = Some(s);
                            m.pend = None;
                            m.cycle.place(s.len(), &mut NoopObserver);
                            events += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Window cutoff, as in the calendar engine.
    for m in ms.iter_mut() {
        if m.cycle.phase() != CyclePhase::Down {
            m.cycle.cutoff(&mut NoopObserver);
        }
    }
    let mut total = CycleAccounting::default();
    for m in &ms {
        total.absorb(m.cycle.accounting());
    }
    let ledgers = if config.keep_ledgers {
        ms.into_iter().map(|m| m.cycle.into_accounting()).collect()
    } else {
        Vec::new()
    };
    Ok(RescanResult {
        cycle: total,
        events,
        transfers_completed,
        ledgers,
    })
}

fn plan_and_work(m: &mut Machine, id: u32, policy: &mut dyn PoolPolicy) -> Result<()> {
    let age = m.cycle.age();
    let planned = clamp_interval(policy.next_interval(id, sanitize_age(age), m.measured_cost)?);
    m.cycle.start_work(planned, &mut NoopObserver);
    m.work_until = age + planned;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PoolSim;
    use crate::fabric::FabricConfig;
    use crate::policy::FixedIntervalPolicy;
    use crate::workload::{VecTimeline, Workload, WorkloadConfig};

    fn config(machines: usize) -> PoolSimConfig {
        PoolSimConfig {
            machines,
            fabric: FabricConfig {
                nic_mb_s: 4.0,
                uplink_mb_s: 16.0,
                core_mb_s: 256.0,
                rack_size: 8,
            },
            image_mb: 512.0,
            window: 50_000.0,
            count_recovery_bytes: true,
            keep_ledgers: true,
            stress_insertion_order: false,
        }
    }

    #[test]
    fn single_machine_matches_hand_computation() {
        let cfg = config(1);
        let t = VecTimeline(vec![vec![Seg {
            start: 0.0,
            end: 1000.0,
        }]]);
        let r = rescan_run(&cfg, &t, &mut FixedIntervalPolicy(200.0)).unwrap();
        assert_eq!(r.cycle.recoveries_completed, 1);
        assert_eq!(r.cycle.checkpoints_committed, 2);
        assert_eq!(r.cycle.useful_seconds, 400.0);
        assert_eq!(r.cycle.total_seconds, 1000.0);
    }

    #[test]
    fn agrees_with_calendar_engine_on_a_small_pool() {
        let mut cfg = config(24);
        cfg.window = 40_000.0;
        cfg.fabric.core_mb_s = 20.0; // congested core
        let w = Workload::new(WorkloadConfig {
            machines: 24,
            rack_size: 8,
            unique_streams: 3,
            ..WorkloadConfig::default()
        })
        .unwrap();
        let a = rescan_run(&cfg, &w, &mut FixedIntervalPolicy(500.0)).unwrap();
        let b = PoolSim::run(&cfg, &w, &mut FixedIntervalPolicy(500.0)).unwrap();
        let rel = |x: f64, y: f64| (x - y).abs() / y.abs().max(1.0);
        assert!(
            rel(a.cycle.total_seconds, b.cycle.total_seconds) < 1e-6,
            "total: {} vs {}",
            a.cycle.total_seconds,
            b.cycle.total_seconds
        );
        assert!(
            rel(a.cycle.useful_seconds, b.cycle.useful_seconds) < 1e-6,
            "useful: {} vs {}",
            a.cycle.useful_seconds,
            b.cycle.useful_seconds
        );
        assert!(
            rel(a.cycle.megabytes, b.cycle.megabytes) < 1e-6,
            "megabytes: {} vs {}",
            a.cycle.megabytes,
            b.cycle.megabytes
        );
        assert_eq!(a.cycle.checkpoints_committed, b.cycle.checkpoints_committed);
        assert_eq!(a.cycle.failures, b.cycle.failures);
        assert_eq!(a.transfers_completed, b.transfers_completed);
    }

    #[test]
    fn water_fill_matches_hand_computed_rates() {
        // Two racks of 8: rack 0 has 4 flows (cap 4 each, uplink-bound at
        // 16/4 = 4 = nic), rack 1 has 8 flows (cap 2 each). Core 16 MB/s
        // < demand 32: water level λ solves 4·min(4,λ) + 8·min(2,λ) = 16
        // → λ between caps: 4λ + 8·2 = 16 has no λ>0... try λ < 2:
        // 12λ = 16 → λ = 4/3 < 2 ✓.
        let cfg = {
            let mut c = config(16);
            c.fabric.core_mb_s = 16.0;
            c
        };
        let mut transferring = vec![false; 16];
        transferring[0..4].fill(true);
        transferring[8..16].fill(true);
        let rates = fair_rates(&cfg, &transferring);
        for (m, &rate) in rates.iter().enumerate() {
            if transferring[m] {
                assert!((rate - 4.0 / 3.0).abs() < 1e-12, "machine {m}: {rate}");
            } else {
                assert_eq!(rate, 0.0, "idle machine {m}");
            }
        }
        let total: f64 = rates.iter().sum();
        assert!((total - 16.0).abs() < 1e-9);
    }
}
