//! Time-weighted histograms for pool-level link and concurrency
//! statistics.
//!
//! The engine samples piecewise-constant signals (link utilization,
//! concurrent transfers) between events; recording `(value, dt)` pairs
//! into a fixed-bin histogram gives exact time-weighted means and
//! percentile estimates with O(1) memory, which is what survives a
//! 10⁶-machine run.

/// A fixed-bin, time-weighted histogram over `[lo, hi]`.
#[derive(Debug, Clone)]
pub struct TimeHistogram {
    lo: f64,
    hi: f64,
    bins: Vec<f64>,
    weight: f64,
    weighted_sum: f64,
    max: f64,
}

impl TimeHistogram {
    /// A histogram with `bins` cells spanning `[lo, hi]` (values clamp).
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        TimeHistogram {
            lo,
            hi,
            bins: vec![0.0; bins.max(1)],
            weight: 0.0,
            weighted_sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record `value` held for `dt` seconds.
    pub fn record(&mut self, value: f64, dt: f64) {
        if !dt.is_finite() || dt <= 0.0 || value.is_nan() {
            return;
        }
        let clamped = value.clamp(self.lo, self.hi);
        let span = self.hi - self.lo;
        let idx = if span > 0.0 {
            (((clamped - self.lo) / span) * self.bins.len() as f64) as usize
        } else {
            0
        }
        .min(self.bins.len() - 1);
        self.bins[idx] += dt;
        self.weight += dt;
        self.weighted_sum += clamped * dt;
        if clamped > self.max {
            self.max = clamped;
        }
    }

    /// Total recorded weight (seconds).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Time-weighted mean of the recorded signal (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.weight > 0.0 {
            self.weighted_sum / self.weight
        } else {
            0.0
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.weight > 0.0 {
            self.max
        } else {
            0.0
        }
    }

    /// Time-weighted `q`-quantile (`0 ≤ q ≤ 1`), reported at the upper
    /// edge of the containing bin (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.weight;
        let mut seen = 0.0;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, w) in self.bins.iter().enumerate() {
            seen += w;
            if seen >= target {
                return self.lo + width * (i + 1) as f64;
            }
        }
        self.hi
    }

    /// Condense into a serializable summary.
    pub fn summary(&self) -> DistSummary {
        DistSummary {
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Serializable summary of a time-weighted distribution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct DistSummary {
    /// Time-weighted mean.
    pub mean: f64,
    /// Median (upper bin edge).
    pub p50: f64,
    /// 95th percentile (upper bin edge).
    pub p95: f64,
    /// 99th percentile (upper bin edge).
    pub p99: f64,
    /// Maximum observed value.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = TimeHistogram::new(0.0, 1.0, 10);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn mean_is_time_weighted() {
        let mut h = TimeHistogram::new(0.0, 10.0, 100);
        h.record(2.0, 30.0);
        h.record(8.0, 10.0);
        assert!((h.mean() - 3.5).abs() < 1e-12);
        assert_eq!(h.max(), 8.0);
    }

    #[test]
    fn quantiles_follow_the_weight() {
        let mut h = TimeHistogram::new(0.0, 10.0, 1000);
        h.record(1.0, 90.0);
        h.record(9.0, 10.0);
        assert!(h.quantile(0.5) < 1.5);
        assert!(h.quantile(0.95) > 8.5);
        assert!(h.quantile(1.0) >= 9.0);
    }

    #[test]
    fn values_clamp_to_range() {
        let mut h = TimeHistogram::new(0.0, 1.0, 10);
        h.record(5.0, 1.0);
        h.record(-3.0, 1.0);
        assert_eq!(h.weight(), 2.0);
        assert!(h.quantile(0.99) <= 1.0);
        assert!(h.mean() >= 0.0 && h.mean() <= 1.0);
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn non_finite_values_do_not_poison_summary() {
        let mut h = TimeHistogram::new(0.0, 1.0, 10);
        h.record(f64::NAN, 1.0);
        assert_eq!(h.weight(), 0.0);
        h.record(f64::INFINITY, 1.0);
        h.record(0.5, f64::INFINITY);
        assert_eq!(h.weight(), 1.0);
        assert_eq!(h.mean(), 1.0);
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn zero_or_negative_dt_is_ignored() {
        let mut h = TimeHistogram::new(0.0, 1.0, 4);
        h.record(0.5, 0.0);
        h.record(0.5, -1.0);
        h.record(0.5, f64::NAN);
        assert_eq!(h.weight(), 0.0);
    }
}
