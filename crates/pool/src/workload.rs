//! Lazy, counter-mode availability workloads.
//!
//! `chs-condor`'s `EmulatedMachine::generate` pre-materializes every
//! machine's segment timeline — hundreds of megabytes at pool scale. The
//! pool instead draws segment `i` of machine `m` on demand from a
//! stateless splitmix64 stream keyed by the **stable machine id**, the
//! same determinism scheme as `chs-sched`'s `decision_seed`: identical
//! configs replay bitwise no matter how events interleave, how machines
//! are inserted, or how many threads prepared the run.
//!
//! Machines inherit their availability *ground truth* from their rack
//! (rack-homogeneous fleets): `unique_streams` distinct Weibull ground
//! truths are dealt round-robin over racks, so a million machines need
//! only `unique_streams` history fits and — after dedup — that many
//! compressed policy tables.

use chs_markov::mix64;

/// One availability segment in absolute virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seg {
    /// Segment start, seconds.
    pub start: f64,
    /// Segment end, seconds (`end > start`).
    pub end: f64,
}

impl Seg {
    /// Segment length, seconds.
    pub fn len(&self) -> f64 {
        self.end - self.start
    }

    /// Whether the segment is degenerate (never true for generated
    /// workloads; guards hand-built test timelines).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A source of per-machine availability segments, consumed in order.
///
/// `prev_end` is the previous segment's end (0 for the first), so
/// streaming implementations only need per-index randomness: the engine
/// threads the chain for them.
pub trait Timeline {
    /// Segment `index` for `machine`, or `None` when the machine's
    /// timeline is exhausted.
    fn segment(&self, machine: u32, index: u32, prev_end: f64) -> Option<Seg>;
}

/// An explicit per-machine segment list (tests, differential suites).
#[derive(Debug, Clone)]
pub struct VecTimeline(pub Vec<Vec<Seg>>);

impl Timeline for VecTimeline {
    fn segment(&self, machine: u32, index: u32, _prev_end: f64) -> Option<Seg> {
        self.0
            .get(machine as usize)
            .and_then(|segs| segs.get(index as usize))
            .copied()
    }
}

/// Knobs of the generated pool workload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct WorkloadConfig {
    /// Machines in the pool.
    pub machines: usize,
    /// Machines per rack; racks share a ground truth.
    pub rack_size: usize,
    /// Distinct availability ground truths dealt over racks.
    pub unique_streams: usize,
    /// Historical durations per stream offered to the fitter.
    pub history_len: usize,
    /// Mean down-time between segments, seconds.
    pub mean_gap: f64,
    /// Master seed; machine streams derive from it and the machine id.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            machines: 1024,
            rack_size: 32,
            unique_streams: 256,
            history_len: 64,
            mean_gap: 1_800.0,
            seed: 2_005,
        }
    }
}

/// Ground-truth parameters of one availability stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Weibull shape (heavy-tailed below 1).
    pub shape: f64,
    /// Weibull scale, seconds.
    pub scale: f64,
}

/// The generated workload: per-stream ground truths plus the stateless
/// per-machine segment generator.
#[derive(Debug, Clone)]
pub struct Workload {
    config: WorkloadConfig,
    streams: Vec<StreamParams>,
}

/// A uniform in `[0, 1)` from a splitmix64-mixed seed.
fn unit(x: u64) -> f64 {
    (mix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// A strictly-in-(0,1] complement, safe to feed `ln`.
fn unit_open(x: u64) -> f64 {
    1.0 - unit(x)
}

impl Workload {
    /// Build the stream table for `config`.
    pub fn new(config: WorkloadConfig) -> crate::Result<Self> {
        if config.machines == 0 || config.rack_size == 0 || config.unique_streams == 0 {
            return Err(crate::PoolError::InvalidConfig(
                "workload counts must be nonzero",
            ));
        }
        if !(config.mean_gap.is_finite() && config.mean_gap >= 0.0) {
            return Err(crate::PoolError::InvalidConfig(
                "mean_gap must be finite and non-negative",
            ));
        }
        let streams = (0..config.unique_streams)
            .map(|s| {
                let base = mix64(config.seed ^ mix64(0x5354_5245_414d ^ s as u64));
                // Shapes straddle the exponential boundary so pools mix
                // heavy-tailed and light-tailed machines, as in the
                // paper's Condor traces.
                let shape = 0.45 + 0.65 * unit(base ^ 0x01);
                let scale = 1_500.0 * (1.0 + 15.0 * unit(base ^ 0x02));
                StreamParams { shape, scale }
            })
            .collect();
        Ok(Workload { config, streams })
    }

    /// The workload's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Number of distinct streams.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }

    /// The stream a machine draws availability from (rack-homogeneous).
    pub fn stream_of(&self, machine: u32) -> usize {
        (machine as usize / self.config.rack_size) % self.streams.len()
    }

    /// Ground truth of stream `s`.
    pub fn params(&self, s: usize) -> StreamParams {
        self.streams[s]
    }

    fn weibull(&self, p: StreamParams, u: f64) -> f64 {
        (p.scale * (-u.ln()).powf(1.0 / p.shape)).max(1.0)
    }

    /// Historical availability durations of stream `s`, for fitting.
    pub fn history(&self, s: usize) -> Vec<f64> {
        let p = self.streams[s];
        let base = mix64(self.config.seed ^ mix64(0x4849_5354 ^ s as u64));
        (0..self.config.history_len)
            .map(|i| self.weibull(p, unit_open(base ^ (0x10 + i as u64))))
            .collect()
    }
}

impl Timeline for Workload {
    fn segment(&self, machine: u32, index: u32, prev_end: f64) -> Option<Seg> {
        let p = self.streams[self.stream_of(machine)];
        let base = mix64(self.config.seed ^ mix64(0x4d41_4348 ^ machine as u64));
        let draw = |lane: u64| unit_open(base ^ mix64((index as u64) << 2 | lane));
        let gap = -draw(0).ln() * self.config.mean_gap;
        let duration = self.weibull(p, draw(1));
        let start = prev_end + gap;
        Some(Seg {
            start,
            end: start + duration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_deterministic_and_ordered() {
        let w = Workload::new(WorkloadConfig::default()).unwrap();
        let mut prev_end = 0.0;
        let mut last: Option<Seg> = None;
        for i in 0..50 {
            let seg = w.segment(17, i, prev_end).unwrap();
            assert!(seg.start >= prev_end);
            assert!(seg.end > seg.start);
            assert!(seg.len() >= 1.0, "durations floor at 1 s");
            // Re-querying with the same chain state is bitwise stable.
            let again = w.segment(17, i, prev_end).unwrap();
            assert_eq!(seg.start.to_bits(), again.start.to_bits());
            assert_eq!(seg.end.to_bits(), again.end.to_bits());
            prev_end = seg.end;
            last = Some(seg);
        }
        assert!(last.unwrap().end > 0.0);
    }

    #[test]
    fn machines_in_one_rack_share_a_stream() {
        let cfg = WorkloadConfig {
            machines: 128,
            rack_size: 16,
            unique_streams: 4,
            ..WorkloadConfig::default()
        };
        let w = Workload::new(cfg).unwrap();
        assert_eq!(w.stream_of(0), w.stream_of(15));
        assert_ne!(w.stream_of(0), w.stream_of(16));
        // Round-robin wraps: rack 4 reuses stream 0.
        assert_eq!(w.stream_of(0), w.stream_of(64));
    }

    #[test]
    fn histories_vary_by_stream_but_not_by_call() {
        let w = Workload::new(WorkloadConfig::default()).unwrap();
        let h0 = w.history(0);
        let h1 = w.history(1);
        assert_eq!(h0.len(), w.config().history_len);
        assert_ne!(h0, h1);
        assert_eq!(h0, w.history(0));
        assert!(h0.iter().all(|&d| d.is_finite() && d >= 1.0));
    }

    #[test]
    fn distinct_machines_get_distinct_timelines() {
        let w = Workload::new(WorkloadConfig::default()).unwrap();
        let a = w.segment(0, 0, 0.0).unwrap();
        let b = w.segment(1, 0, 0.0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_zero_counts() {
        for (m, r, u) in [(0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            let cfg = WorkloadConfig {
                machines: m,
                rack_size: r,
                unique_streams: u,
                ..WorkloadConfig::default()
            };
            assert!(Workload::new(cfg).is_err());
        }
    }

    #[test]
    fn vec_timeline_exhausts() {
        let t = VecTimeline(vec![vec![Seg {
            start: 1.0,
            end: 5.0,
        }]]);
        assert!(t.segment(0, 0, 0.0).is_some());
        assert!(t.segment(0, 1, 0.0).is_none());
        assert!(t.segment(1, 0, 0.0).is_none());
    }
}
