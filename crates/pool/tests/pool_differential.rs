//! Differential gates for the pool engine.
//!
//! Three layers, in increasing scope:
//!
//! 1. **Uncontended identity (bitwise)** — a 1-machine pool whose NIC is
//!    the bottleneck must reproduce `chs_cycle::run_trace`'s closed-form
//!    ledger *bitwise*. The configs are dyadic (integer segment bounds
//!    and intervals, power-of-two image/bandwidth) so every FP operation
//!    on both paths is exact and "equal" means equal to the last bit.
//! 2. **Small-pool contention** — pools small enough for
//!    `chs_condor::run_contention` (one shared link, processor sharing)
//!    must match its totals when the pool's rack collapses to the same
//!    single link (`nic = uplink = core`).
//! 3. **Replay determinism** — reversed machine-insertion order and a
//!    1-thread vs N-thread policy-store build must produce bitwise
//!    identical digests.

use chs_condor::{run_contention, ContentionConfig, EmulatedMachine};
use chs_cycle::{run_trace, CycleAccounting, CycleConfig, NoopObserver, SchedulePolicy};
use chs_dist::fit::fit_model;
use chs_dist::ModelKind;
use chs_markov::CheckpointCosts;
use chs_pool::{
    build_policy_store, AdaptiveVaidyaPolicy, FabricConfig, PoolSim, PoolSimConfig,
    SchedulePolicyBridge, Seg, StorePolicy, VecTimeline, Workload, WorkloadConfig,
};
use proptest::prelude::*;

/// Bitwise ledger equality: `PartialEq` would accept `-0.0 == 0.0`; the
/// identity gate must not.
fn assert_ledger_bitwise(pool: &CycleAccounting, reference: &CycleAccounting) {
    let fields = |a: &CycleAccounting| {
        [
            ("useful_seconds", a.useful_seconds),
            ("lost_seconds", a.lost_seconds),
            ("lost_work_seconds", a.lost_work_seconds),
            ("recovery_seconds", a.recovery_seconds),
            ("checkpoint_seconds", a.checkpoint_seconds),
            ("total_seconds", a.total_seconds),
            ("megabytes", a.megabytes),
            ("full_megabytes", a.full_megabytes),
            ("partial_megabytes", a.partial_megabytes),
        ]
    };
    for ((name, p), (_, r)) in fields(pool).into_iter().zip(fields(reference)) {
        assert_eq!(
            p.to_bits(),
            r.to_bits(),
            "{name} differs: pool {p:?} vs closed form {r:?}"
        );
    }
    assert_eq!(pool.recoveries, reference.recoveries);
    assert_eq!(pool.recoveries_completed, reference.recoveries_completed);
    assert_eq!(pool.checkpoints_attempted, reference.checkpoints_attempted);
    assert_eq!(pool.checkpoints_committed, reference.checkpoints_committed);
    assert_eq!(pool.failures, reference.failures);
}

/// A dyadic-exact age-dependent schedule: alternates two integer
/// intervals by age bracket, exercising replanning without leaving
/// exact-FP territory.
struct DyadicPolicy {
    short: f64,
    long: f64,
}

impl SchedulePolicy for DyadicPolicy {
    fn next_interval(&self, age: f64) -> f64 {
        if age < 1024.0 {
            self.short
        } else {
            self.long
        }
    }

    fn label(&self) -> String {
        "dyadic".into()
    }
}

/// 1-machine pool config whose only bottleneck is the NIC: 512 MB image
/// at 4 MB/s is a 128 s transfer, the closed form's `c = R = 128`.
fn uncontended_config(window: f64) -> (PoolSimConfig, CycleConfig) {
    let pool = PoolSimConfig {
        machines: 1,
        fabric: FabricConfig {
            nic_mb_s: 4.0,
            uplink_mb_s: 4.0,
            core_mb_s: 4.0,
            rack_size: 1,
        },
        image_mb: 512.0,
        window,
        count_recovery_bytes: true,
        keep_ledgers: true,
        stress_insertion_order: false,
    };
    let closed = CycleConfig {
        checkpoint_cost: 128.0,
        recovery_cost: 128.0,
        image_mb: 512.0,
        count_recovery_bytes: true,
    };
    (pool, closed)
}

#[test]
fn uncontended_pool_is_bitwise_identical_to_closed_form() {
    // Hand-picked durations covering every exit path: mid-recovery
    // eviction (100 < 128), mid-work eviction, mid-checkpoint eviction,
    // and an exact commit-boundary exhaustion (128 + 200 + 128 = 456).
    let durations = [100.0, 1000.0, 456.0, 300.0, 4096.0, 129.0];
    let mut segs = Vec::new();
    let mut t0 = 0.0;
    for &d in &durations {
        segs.push(Seg {
            start: t0,
            end: t0 + d,
        });
        t0 += d + 64.0; // integer gaps keep everything exact
    }
    let (pool_cfg, closed_cfg) = uncontended_config(t0 + 1.0);
    let policy = DyadicPolicy {
        short: 200.0,
        long: 320.0,
    };
    let expect = run_trace(&durations, &policy, &closed_cfg, &mut NoopObserver);
    let got = PoolSim::run(
        &pool_cfg,
        &VecTimeline(vec![segs]),
        &mut SchedulePolicyBridge(DyadicPolicy {
            short: 200.0,
            long: 320.0,
        }),
    )
    .unwrap();
    assert_ledger_bitwise(&got.cycle, &expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random dyadic traces: any integer segment/gap/interval mix stays
    /// bitwise identical to the closed form.
    #[test]
    fn random_dyadic_traces_match_closed_form_bitwise(
        durations in proptest::collection::vec(1u32..6_000, 1..12),
        gaps in proptest::collection::vec(1u32..2_000, 12..13),
        short in 16u32..1_500,
        long in 16u32..1_500,
    ) {
        let mut segs = Vec::new();
        let mut t0 = 0.0;
        let durations: Vec<f64> = durations.iter().map(|&d| d as f64).collect();
        for (i, &d) in durations.iter().enumerate() {
            t0 += gaps[i] as f64;
            segs.push(Seg { start: t0, end: t0 + d });
            t0 += d;
        }
        let (pool_cfg, closed_cfg) = uncontended_config(t0 + 1.0);
        let policy = DyadicPolicy { short: short as f64, long: long as f64 };
        let expect = run_trace(&durations, &policy, &closed_cfg, &mut NoopObserver);
        let got = PoolSim::run(
            &pool_cfg,
            &VecTimeline(vec![segs]),
            &mut SchedulePolicyBridge(DyadicPolicy { short: short as f64, long: long as f64 }),
        ).unwrap();
        assert_ledger_bitwise(&got.cycle, &expect);
    }
}

/// Build the pool-side twin of a `ContentionConfig`: same machines, same
/// fitted models, same adaptive replanning, and a fabric whose three
/// tiers collapse to the one shared link (`rack_size = jobs` puts every
/// machine in one rack; `nic = uplink = core` makes the fair share
/// exactly `link / k` — processor sharing).
fn contention_twin(
    config: &ContentionConfig,
) -> (PoolSimConfig, VecTimeline, AdaptiveVaidyaPolicy) {
    let mut timelines = Vec::with_capacity(config.jobs);
    let mut fits = Vec::with_capacity(config.jobs);
    for i in 0..config.jobs {
        let machine = EmulatedMachine::generate(
            &config.pool,
            i as u32,
            config.history_len,
            config.window * 2.0 + 7.0 * 86_400.0,
            config.seed,
        );
        fits.push(fit_model(config.model, &machine.history).unwrap());
        timelines.push(
            machine
                .segments()
                .iter()
                .map(|s| Seg {
                    start: s.start,
                    end: s.end,
                })
                .collect(),
        );
    }
    let pool_cfg = PoolSimConfig {
        machines: config.jobs,
        fabric: FabricConfig {
            nic_mb_s: config.link_mb_per_s,
            uplink_mb_s: config.link_mb_per_s,
            core_mb_s: config.link_mb_per_s,
            rack_size: config.jobs,
        },
        image_mb: config.image_mb,
        window: config.window,
        count_recovery_bytes: true,
        keep_ledgers: true,
        stress_insertion_order: false,
    };
    (
        pool_cfg,
        VecTimeline(timelines),
        AdaptiveVaidyaPolicy::per_machine(fits),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Small pools on one shared link agree with `run_contention`.
    ///
    /// The window is deliberately short (~2.4 h). The coupled system is
    /// chaotic under the *adaptive* policy: age enters `T_opt`, `T_opt`
    /// moves every transfer on the shared link, and a ulp of drift can
    /// flip a commit-vs-evict outcome. Over a short window the engines
    /// track each other to ~1e-8; over days they decohere by design —
    /// that regime is covered by the aggregate-statistics gates in
    /// `pool_bench`, not by trajectory comparison.
    #[test]
    fn small_pools_match_run_contention(
        jobs in 2usize..=16,
        seed in 0u64..500,
    ) {
        let mut cfg = ContentionConfig::campus(jobs, ModelKind::Weibull);
        cfg.window = 0.1 * 86_400.0;
        cfg.seed = 9_000 + seed;
        let expect = run_contention(&cfg).unwrap();
        let (pool_cfg, timeline, mut policy) = contention_twin(&cfg);
        let got = PoolSim::run(&pool_cfg, &timeline, &mut policy).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        prop_assert!(
            rel(got.cycle.total_seconds, expect.cycle.total_seconds) < 1e-6,
            "total: {} vs {}", got.cycle.total_seconds, expect.cycle.total_seconds
        );
        prop_assert!(
            rel(got.cycle.useful_seconds, expect.cycle.useful_seconds) < 1e-6,
            "useful: {} vs {}", got.cycle.useful_seconds, expect.cycle.useful_seconds
        );
        prop_assert!(
            rel(got.cycle.megabytes, expect.cycle.megabytes) < 1e-6,
            "megabytes: {} vs {}", got.cycle.megabytes, expect.cycle.megabytes
        );
        prop_assert!(
            rel(got.cycle.checkpoint_seconds, expect.cycle.checkpoint_seconds) < 1e-6,
            "ckpt secs: {} vs {}", got.cycle.checkpoint_seconds, expect.cycle.checkpoint_seconds
        );
        prop_assert_eq!(got.cycle.checkpoints_committed, expect.cycle.checkpoints_committed);
        prop_assert_eq!(got.cycle.failures, expect.cycle.failures);
        prop_assert_eq!(got.cycle.recoveries, expect.cycle.recoveries);
    }

    /// Replays are bitwise identical under reversed machine insertion and
    /// under a policy store built on one thread instead of many.
    #[test]
    fn replay_is_bitwise_deterministic(seed in 0u64..1_000) {
        let wl_cfg = WorkloadConfig {
            machines: 96,
            rack_size: 16,
            unique_streams: 3,
            seed: 40_000 + seed,
            ..WorkloadConfig::default()
        };
        let workload = Workload::new(wl_cfg).unwrap();
        let fits: Vec<_> = (0..workload.streams())
            .map(|s| fit_model(ModelKind::Weibull, &workload.history(s)).unwrap())
            .collect();
        let pool_cfg = PoolSimConfig {
            machines: wl_cfg.machines,
            fabric: FabricConfig {
                nic_mb_s: 4.0,
                uplink_mb_s: 20.0,
                core_mb_s: 60.0,
                rack_size: wl_cfg.rack_size,
            },
            image_mb: 512.0,
            window: 86_400.0 / 4.0,
            count_recovery_bytes: true,
            keep_ledgers: false,
            stress_insertion_order: false,
        };
        let costs = CheckpointCosts::symmetric(pool_cfg.nominal_cost());
        let stream_of = |m: u32| workload.stream_of(m);
        let (store_par, _) =
            build_policy_store(&fits, wl_cfg.machines, stream_of, costs, 1).unwrap();
        let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (store_seq, _) = single
            .install(|| build_policy_store(&fits, wl_cfg.machines, stream_of, costs, 1))
            .unwrap();
        prop_assert_eq!(store_par.digest(), store_seq.digest());

        let a = PoolSim::run(&pool_cfg, &workload, &mut StorePolicy::new(store_par)).unwrap();
        let mut reversed = pool_cfg;
        reversed.stress_insertion_order = true;
        let b = PoolSim::run(&reversed, &workload, &mut StorePolicy::new(store_seq)).unwrap();
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.cycle, b.cycle);
    }
}
