//! Shared fit ingest: one flat, order-preserving parallel fan-out over
//! fit work items.
//!
//! Both faces of the pipeline go through [`fit_batch`]:
//!
//! * the **batch prepare** (`chs-sim::prepare_experiments*`) builds one
//!   [`FitItem`] per `(machine, family)` in machine-major order and
//!   reduces the results by index arithmetic — exactly the fan-out it
//!   ran inline before this crate existed, so the refactor is pinned
//!   bitwise by the existing prepare-determinism suites;
//! * the **online scheduler** bootstraps cold machines by batching
//!   their buffered windows through the same path.
//!
//! Every fit depends only on its own item and results come back in
//! input order (the vendored rayon preserves index order), so the
//! output is bitwise-identical for any thread count.

use chs_dist::fit::fit_model;
use chs_dist::{FittedModel, ModelKind};
use rayon::prelude::*;

/// One fit request: which family to fit to which training sample.
/// Disabled items (injected estimator failures, fault drills) are
/// carried through the fan-out as `None` so index alignment survives.
#[derive(Debug, Clone, Copy)]
pub struct FitItem<'a> {
    /// Family to fit.
    pub kind: ModelKind,
    /// Training durations (seconds).
    pub data: &'a [f64],
    /// `false` skips the fit (the slot "fails by decree").
    pub enabled: bool,
}

impl<'a> FitItem<'a> {
    /// An enabled fit item.
    pub fn new(kind: ModelKind, data: &'a [f64]) -> Self {
        FitItem {
            kind,
            data,
            enabled: true,
        }
    }

    /// A disabled item: occupies its slot, fits nothing.
    pub fn disabled(kind: ModelKind, data: &'a [f64]) -> Self {
        FitItem {
            kind,
            data,
            enabled: false,
        }
    }
}

/// Fit every enabled item in parallel, returning results in input
/// order: `None` for disabled items, `Some(Err(..))` where the
/// estimator failed, `Some(Ok(..))` otherwise.
///
/// The fan-out is a flat index map — no chunking by machine — so cores
/// stay busy even when a few expensive EM fits dominate, and the result
/// vector is bitwise-identical for any thread count.
pub fn fit_batch(items: &[FitItem<'_>]) -> Vec<Option<chs_dist::Result<FittedModel>>> {
    (0..items.len())
        .into_par_iter()
        .map(|i| {
            let item = &items[i];
            item.enabled.then(|| fit_model(item.kind, item.data))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chs_dist::AvailabilityModel;
    use rand::SeedableRng;

    fn samples(seed: u64, n: usize) -> Vec<f64> {
        let gen = chs_dist::Weibull::new(0.6, 2_000.0).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| gen.sample(&mut rng)).collect()
    }

    #[test]
    fn fit_batch_matches_serial_fit_model_bitwise() {
        let data: Vec<Vec<f64>> = (0..6).map(|s| samples(s, 40)).collect();
        let items: Vec<FitItem<'_>> = data
            .iter()
            .flat_map(|d| ModelKind::PAPER_SET.iter().map(|&k| FitItem::new(k, d)))
            .collect();
        let batch = fit_batch(&items);
        assert_eq!(batch.len(), items.len());
        for (item, fit) in items.iter().zip(&batch) {
            let serial = fit_model(item.kind, item.data).unwrap();
            let parallel = fit.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(
                serde_json::to_string(parallel).unwrap(),
                serde_json::to_string(&serial).unwrap(),
                "{:?} diverged from the serial path",
                item.kind
            );
        }
    }

    #[test]
    fn disabled_items_keep_their_slot() {
        let d = samples(9, 40);
        let items = vec![
            FitItem::new(ModelKind::Exponential, &d),
            FitItem::disabled(ModelKind::Weibull, &d),
            FitItem::new(ModelKind::Weibull, &d),
        ];
        let fits = fit_batch(&items);
        assert!(fits[0].is_some());
        assert!(fits[1].is_none());
        assert!(fits[2].is_some());
    }

    #[test]
    fn estimator_failures_surface_as_errors_in_place() {
        let short = [100.0];
        let good = samples(4, 40);
        let items = vec![
            FitItem::new(ModelKind::Exponential, &short),
            FitItem::new(ModelKind::Exponential, &good),
        ];
        let fits = fit_batch(&items);
        assert!(fits[0].as_ref().unwrap().is_err());
        assert!(fits[1].as_ref().unwrap().is_ok());
    }
}
