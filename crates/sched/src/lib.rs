//! Online checkpoint scheduler: the serving side of the paper's
//! pipeline.
//!
//! The batch pipeline (fit 25 training observations per machine, sweep
//! the grid, write tables) answers the paper's questions but not a
//! production cluster's: machines come and go, availability regimes
//! drift, and the checkpoint library asks for `T_opt(machine, age)`
//! thousands of times per second. This crate turns the batch stages
//! into an online loop:
//!
//! * [`ingest`] — the one parallel fit fan-out shared by the batch
//!   prepare (`chs-sim` delegates here) and scheduler bootstraps, so
//!   "batch" is literally a replay of the online ingest path.
//! * [`Scheduler`] — a deterministic event-clock loop: availability
//!   observations stream into per-machine
//!   [`chs_dist::fit::StreamingFit`]s (change-point triggered refits);
//!   on publish boundaries the fitted models are compressed through a
//!   shared [`chs_markov::PolicyCache`] and swapped in as an immutable
//!   [`chs_markov::PolicyStore`] epoch; queries are served from the
//!   current epoch by table lookup.
//!
//! Determinism is load-bearing: the event clock (not wall time) drives
//! publishes, per-decision seeds derive from stable
//! `(machine id, epoch)` keys, and the publish fan-out preserves input
//! order — an N-thread run is bitwise identical to a 1-thread run
//! (pinned by `tests/determinism.rs`).

#![deny(missing_docs)]

pub mod ingest;
mod scheduler;

pub use scheduler::{Decision, Event, RunSummary, Scheduler, SchedulerConfig};

/// Errors from the online scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A fit or observation was rejected by the estimation layer.
    Dist(chs_dist::DistError),
    /// Policy compression or optimization failed.
    Markov(chs_markov::MarkovError),
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// What was wrong.
        message: &'static str,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Dist(e) => write!(f, "estimation error: {e}"),
            SchedError::Markov(e) => write!(f, "policy error: {e}"),
            SchedError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<chs_dist::DistError> for SchedError {
    fn from(e: chs_dist::DistError) -> Self {
        SchedError::Dist(e)
    }
}

impl From<chs_markov::MarkovError> for SchedError {
    fn from(e: chs_markov::MarkovError) -> Self {
        SchedError::Markov(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SchedError>;
