//! The deterministic serving loop: ingest → refit → publish → query.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use chs_dist::fit::{RefitTrigger, StreamingFit, StreamingFitConfig};
use chs_dist::FittedModel;
use chs_markov::{
    mix64, ClusterKey, CompressedPolicy, CompressionConfig, DedupKey, PolicyCache, PolicyStore,
};
use rayon::prelude::*;
use serde::Serialize;

use crate::{Result, SchedError};

/// Scheduler configuration: how machines are fitted online, how
/// policies are compressed, and how often epochs publish.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Per-machine streaming refit configuration (family, window,
    /// change-point detector, refresh cadence).
    pub streaming: StreamingFitConfig,
    /// Policy table compression (costs, horizon, error budget).
    pub compression: CompressionConfig,
    /// Publish a new store epoch every this many ingested observations
    /// (0 = only on explicit [`Event::Publish`] / [`Scheduler::publish`]).
    pub publish_every: u64,
}

impl SchedulerConfig {
    /// Default loop: library-default streaming fit for `streaming.kind`,
    /// the given compression geometry, publish every 256 observations.
    pub fn new(streaming: StreamingFitConfig, compression: CompressionConfig) -> Self {
        SchedulerConfig {
            streaming,
            compression,
            publish_every: 256,
        }
    }
}

/// One tick of the deterministic event clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An availability duration (seconds) observed on a machine.
    Observe {
        /// Which machine.
        machine: u64,
        /// The completed availability duration.
        duration: f64,
    },
    /// A checkpoint-interval query for a machine at a given age.
    Query {
        /// Which machine.
        machine: u64,
        /// Machine age (seconds since last failure).
        age: f64,
    },
    /// Force an epoch publish now.
    Publish,
}

/// A served checkpoint decision: the compressed `T_opt` plus a
/// deterministic per-decision seed derived from the stable
/// `(machine id, epoch)` key — downstream jitter/staggering built on it
/// replays identically across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Decision {
    /// Compressed optimal work interval (seconds).
    pub work_seconds: f64,
    /// Stable seed for this `(machine, epoch)` decision stream.
    pub seed: u64,
}

/// What a [`Scheduler::run`] replay did, reduced to comparable
/// fingerprints: run the same events on any thread count and every
/// field must match bitwise.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RunSummary {
    /// Observations ingested.
    pub observations: u64,
    /// Queries served (answered or not).
    pub queries: u64,
    /// Queries answered from a published table.
    pub answered: u64,
    /// Digest of every published store, in publish order.
    pub publishes: Vec<u64>,
    /// Order-sensitive digest folded over every query answer.
    pub query_digest: u64,
    /// Refits installed across all machines (initial fits included).
    pub refits: u64,
    /// Change-point triggered refits across all machines.
    pub regime_shifts: u64,
}

/// The online scheduler: per-machine streaming fits, a shared
/// compression cache, and the current published [`PolicyStore`] epoch.
///
/// All state advances only through [`Scheduler::observe`] /
/// [`Scheduler::publish`] (or their [`Scheduler::run`] driver), in
/// event order — there is no wall clock anywhere, which is what makes
/// replays reproducible.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    machines: BTreeMap<u64, StreamingFit>,
    cache: PolicyCache,
    store: Arc<PolicyStore>,
    ingested: u64,
    refits: u64,
    regime_shifts: u64,
    cluster_rejects: u64,
}

impl Scheduler {
    /// A scheduler with no machines and an empty epoch-0 store.
    ///
    /// # Errors
    /// [`SchedError::Dist`] / [`SchedError::Markov`] for invalid
    /// streaming or compression configs.
    pub fn new(config: SchedulerConfig) -> Result<Self> {
        config.streaming.validate()?;
        // Surface bad compression geometry now, not at first publish.
        let probe = FittedModel::Exponential(
            chs_dist::Exponential::from_mean(1.0).map_err(SchedError::Dist)?,
        );
        CompressedPolicy::build(&probe, &config.compression)?;
        let cache = PolicyCache::new(config.compression);
        Ok(Scheduler {
            config,
            machines: BTreeMap::new(),
            cache,
            store: Arc::new(PolicyStore::empty(0)),
            ingested: 0,
            refits: 0,
            regime_shifts: 0,
            cluster_rejects: 0,
        })
    }

    /// Ingest one availability observation for `machine`, creating its
    /// streaming fit on first sight. Returns the refit trigger this
    /// observation caused, if any. Does **not** publish — epochs move
    /// on the event clock ([`Scheduler::run`]) or explicitly.
    ///
    /// # Errors
    /// [`SchedError::Dist`] for non-finite/non-positive durations; the
    /// observation is not recorded.
    pub fn observe(&mut self, machine: u64, duration: f64) -> Result<Option<RefitTrigger>> {
        let streaming = &self.config.streaming;
        let fit = match self.machines.entry(machine) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(StreamingFit::new(streaming.clone()).expect("config validated in new"))
            }
        };
        let trigger = fit.step(duration)?;
        self.ingested += 1;
        if trigger.is_some() {
            self.refits += 1;
        }
        if trigger == Some(RefitTrigger::RegimeShift) {
            self.regime_shifts += 1;
        }
        Ok(trigger)
    }

    /// Compress every fitted machine's current model and swap in a new
    /// store epoch. Machines still warming up (no installed fit) are
    /// absent from the epoch and their queries return `None`.
    ///
    /// New tables build in three order-preserving deterministic waves:
    /// first every cluster-cell representative (and unclustered key)
    /// compresses in parallel; then the remaining cell members verify
    /// against their representative's surface in parallel, serving from
    /// it when the per-cell error bound holds and falling back to a
    /// private build otherwise; finally everything is inserted in
    /// first-reference order. Machines whose fitted parameters hit the
    /// dedup cache share the existing `Arc` without any build. The
    /// assembled store is bitwise identical for any thread count.
    ///
    /// # Errors
    /// Propagates compression failures; the previous epoch stays
    /// published.
    pub fn publish(&mut self) -> Result<Arc<PolicyStore>> {
        let fitted: Vec<(u64, &FittedModel)> = self
            .machines
            .iter()
            .filter_map(|(id, fit)| fit.model().map(|m| (*id, m)))
            .collect();
        let keys: Vec<DedupKey> = fitted.iter().map(|(_, m)| self.cache.key(m)).collect();

        // Distinct keys not yet cached, in first-reference order over
        // the (sorted) machines.
        let mut seen: BTreeSet<&DedupKey> = BTreeSet::new();
        let mut missing: Vec<(&DedupKey, &FittedModel)> = Vec::new();
        for ((_, model), key) in fitted.iter().zip(&keys) {
            if self.cache.get(key).is_none() && seen.insert(key) {
                missing.push((key, model));
            }
        }
        let compression = self.config.compression;

        // Coarse parameter cells over the missing keys; the first
        // missing member of a cell (first-reference order) is its
        // representative, every later member only a sharing candidate.
        let mut rep_of_cell: BTreeMap<ClusterKey, usize> = BTreeMap::new();
        let mut member_of: Vec<Option<usize>> = Vec::with_capacity(missing.len());
        for (i, (_, model)) in missing.iter().enumerate() {
            member_of.push(match ClusterKey::new(model, &compression) {
                Some(cell) => match rep_of_cell.entry(cell) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(i);
                        None
                    }
                    std::collections::btree_map::Entry::Occupied(e) => Some(*e.get()),
                },
                None => None,
            });
        }

        // Wave 1: representatives and unclustered keys build exactly.
        let rep_tables: Vec<Option<Arc<CompressedPolicy>>> = (0..missing.len())
            .into_par_iter()
            .map(|i| {
                member_of[i]
                    .is_none()
                    .then(|| CompressedPolicy::build(missing[i].1, &compression).map(Arc::new))
                    .transpose()
            })
            .collect::<chs_markov::Result<_>>()?;

        // Wave 2: members verify against their cell's shared surface;
        // rejects fall back to a private build.
        enum Resolved {
            Shared(Arc<CompressedPolicy>),
            Private(Arc<CompressedPolicy>),
        }
        let member_tables: Vec<Option<Resolved>> = (0..missing.len())
            .into_par_iter()
            .map(|i| {
                member_of[i]
                    .map(|rep| {
                        let surface = rep_tables[rep].as_ref().expect("rep built in wave 1");
                        if surface.acceptable_for(missing[i].1, &compression)? {
                            Ok(Resolved::Shared(Arc::clone(surface)))
                        } else {
                            let private = CompressedPolicy::build(missing[i].1, &compression)?;
                            Ok(Resolved::Private(Arc::new(private)))
                        }
                    })
                    .transpose()
            })
            .collect::<chs_markov::Result<_>>()?;

        // Wave 3: sequential inserts in first-reference order.
        let mut builds_this_publish = 0u64;
        for (i, ((key, _), (rep, member))) in missing
            .iter()
            .zip(rep_tables.into_iter().zip(member_tables))
            .enumerate()
        {
            debug_assert_eq!(rep.is_some(), member_of[i].is_none());
            match (rep, member) {
                (Some(table), _) => {
                    self.cache.insert((*key).clone(), table);
                    builds_this_publish += 1;
                }
                (None, Some(Resolved::Shared(table))) => {
                    self.cache.insert_alias((*key).clone(), table);
                }
                (None, Some(Resolved::Private(table))) => {
                    self.cache.insert((*key).clone(), table);
                    self.cluster_rejects += 1;
                    builds_this_publish += 1;
                }
                (None, None) => unreachable!("every missing key resolves in wave 1 or 2"),
            }
        }
        // Every fitted machine not behind one of this publish's builds
        // was resolved from cache or sharing: count it as a hit so the
        // hits/builds counters describe machines, not just lookups.
        self.cache
            .note_hits(fitted.len() as u64 - builds_this_publish);

        let entries: Vec<(u64, Arc<CompressedPolicy>)> = fitted
            .iter()
            .zip(&keys)
            .map(|((id, _), key)| {
                let table = self.cache.get(key).expect("inserted above");
                (*id, Arc::clone(table))
            })
            .collect();
        let epoch = self.store.epoch() + 1;
        self.store = Arc::new(PolicyStore::assemble(epoch, entries)?);
        Ok(Arc::clone(&self.store))
    }

    /// Serve a checkpoint decision for `machine` at `age` from the
    /// current epoch: a compressed-table lookup plus the stable
    /// `(machine, epoch)` decision seed. `None` until the machine makes
    /// it into a published epoch.
    pub fn decide(&self, machine: u64, age: f64) -> Option<Decision> {
        let work_seconds = self.store.next_interval(machine, age)?;
        Some(Decision {
            work_seconds,
            seed: decision_seed(machine, self.store.epoch()),
        })
    }

    /// Replay an event sequence on the deterministic clock: observations
    /// ingest (auto-publishing every `publish_every`), queries serve
    /// from the current epoch, and the whole run reduces to a
    /// [`RunSummary`] of comparable fingerprints.
    ///
    /// # Errors
    /// Stops at the first failing event.
    pub fn run(&mut self, events: &[Event]) -> Result<RunSummary> {
        let mut summary = RunSummary::default();
        for event in events {
            match *event {
                Event::Observe { machine, duration } => {
                    self.observe(machine, duration)?;
                    summary.observations += 1;
                    if self.config.publish_every > 0
                        && self.ingested.is_multiple_of(self.config.publish_every)
                    {
                        let store = self.publish()?;
                        summary.publishes.push(store.digest());
                    }
                }
                Event::Query { machine, age } => {
                    summary.queries += 1;
                    let mut h = mix64(summary.query_digest ^ machine);
                    match self.decide(machine, age) {
                        Some(d) => {
                            summary.answered += 1;
                            h = mix64(h ^ d.work_seconds.to_bits());
                            h = mix64(h ^ d.seed);
                        }
                        None => h = mix64(h ^ 0x6e6f_2d61_6e73_7765), // "no-answe"
                    }
                    summary.query_digest = h;
                }
                Event::Publish => {
                    let store = self.publish()?;
                    summary.publishes.push(store.digest());
                }
            }
        }
        summary.refits = self.refits;
        summary.regime_shifts = self.regime_shifts;
        Ok(summary)
    }

    /// The currently published store epoch.
    pub fn store(&self) -> &Arc<PolicyStore> {
        &self.store
    }

    /// Streaming-fit state of one machine, if it has been observed.
    pub fn machine(&self, machine: u64) -> Option<&StreamingFit> {
        self.machines.get(&machine)
    }

    /// Machines observed so far.
    pub fn machines(&self) -> usize {
        self.machines.len()
    }

    /// Observations ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Refits installed across all machines.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Change-point triggered refits across all machines.
    pub fn regime_shifts(&self) -> u64 {
        self.regime_shifts
    }

    /// Cluster-sharing candidates that failed the per-cell bound check
    /// and fell back to a private build, across all publishes. The
    /// accepted counterpart is [`PolicyCache::counters`]' `shared`.
    pub fn cluster_rejects(&self) -> u64 {
        self.cluster_rejects
    }

    /// The shared compression cache (dedup statistics live here).
    pub fn cache(&self) -> &PolicyCache {
        &self.cache
    }

    /// The configuration the scheduler runs under.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }
}

/// Stable per-decision seed for a `(machine, epoch)` pair.
pub(crate) fn decision_seed(machine: u64, epoch: u64) -> u64 {
    mix64(mix64(epoch ^ 0x7365_6476_6572_3031) ^ machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chs_dist::{AvailabilityModel, Exponential, ModelKind, Weibull};
    use chs_markov::CheckpointCosts;
    use rand::SeedableRng;

    fn config(kind: ModelKind) -> SchedulerConfig {
        SchedulerConfig::new(
            StreamingFitConfig {
                kind,
                ..StreamingFitConfig::default()
            },
            CompressionConfig::new(CheckpointCosts::symmetric(110.0)),
        )
    }

    fn observe_n(
        sched: &mut Scheduler,
        machine: u64,
        gen: &dyn AvailabilityModel,
        n: usize,
        seed: u64,
    ) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..n {
            sched.observe(machine, gen.sample(&mut rng)).unwrap();
        }
    }

    #[test]
    fn queries_before_any_publish_are_unanswered() {
        let mut sched = Scheduler::new(config(ModelKind::Exponential)).unwrap();
        let gen = Exponential::from_mean(700.0).unwrap();
        observe_n(&mut sched, 1, &gen, 60, 7);
        assert!(sched.decide(1, 0.0).is_none());
        sched.publish().unwrap();
        assert!(sched.decide(1, 0.0).is_some());
        assert_eq!(sched.store().epoch(), 1);
    }

    #[test]
    fn warming_machines_are_absent_from_the_epoch() {
        let mut sched = Scheduler::new(config(ModelKind::Exponential)).unwrap();
        let gen = Exponential::from_mean(700.0).unwrap();
        observe_n(&mut sched, 1, &gen, 60, 7);
        observe_n(&mut sched, 2, &gen, 3, 8); // below min_fit_observations
        sched.publish().unwrap();
        assert!(sched.decide(1, 0.0).is_some());
        assert!(sched.decide(2, 0.0).is_none());
        assert_eq!(sched.store().len(), 1);
    }

    #[test]
    fn served_interval_matches_the_machines_compressed_table() {
        let mut sched = Scheduler::new(config(ModelKind::Weibull)).unwrap();
        let gen = Weibull::paper_exemplar();
        observe_n(&mut sched, 9, &gen, 80, 11);
        sched.publish().unwrap();
        let model = sched.machine(9).unwrap().model().unwrap().clone();
        let table = CompressedPolicy::build(&model, &sched.config().compression).unwrap();
        for age in [0.0, 100.0, 10_000.0, 1e6] {
            assert_eq!(
                sched.decide(9, age).unwrap().work_seconds.to_bits(),
                table.next_interval(age).to_bits()
            );
        }
    }

    #[test]
    fn decision_seed_is_stable_per_machine_and_epoch() {
        let mut sched = Scheduler::new(config(ModelKind::Exponential)).unwrap();
        let gen = Exponential::from_mean(700.0).unwrap();
        observe_n(&mut sched, 1, &gen, 60, 7);
        sched.publish().unwrap();
        let a = sched.decide(1, 0.0).unwrap();
        let b = sched.decide(1, 5_000.0).unwrap();
        assert_eq!(a.seed, b.seed, "same (machine, epoch) ⇒ same seed");
        sched.publish().unwrap();
        let c = sched.decide(1, 0.0).unwrap();
        assert_ne!(a.seed, c.seed, "new epoch ⇒ new seed");
        assert_eq!(a.seed, decision_seed(1, 1));
    }

    #[test]
    fn identical_streams_share_one_table() {
        let mut sched = Scheduler::new(config(ModelKind::Weibull)).unwrap();
        let gen = Weibull::paper_exemplar();
        // Same seed ⇒ bitwise-equal training data ⇒ same dedup key.
        observe_n(&mut sched, 1, &gen, 60, 5);
        observe_n(&mut sched, 2, &gen, 60, 5);
        observe_n(&mut sched, 3, &gen, 60, 99);
        sched.publish().unwrap();
        let stats = sched.store().stats();
        assert_eq!(stats.machines, 3);
        assert_eq!(stats.tables, 2);
        assert!(stats.dedup_ratio > 1.4);
    }

    #[test]
    fn event_clock_publishes_on_the_boundary() {
        let mut cfg = config(ModelKind::Exponential);
        cfg.publish_every = 50;
        let mut sched = Scheduler::new(cfg).unwrap();
        let gen = Exponential::from_mean(700.0).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let mut events = Vec::new();
        for _ in 0..100 {
            events.push(Event::Observe {
                machine: 1,
                duration: gen.sample(&mut rng),
            });
        }
        events.push(Event::Query {
            machine: 1,
            age: 0.0,
        });
        let summary = sched.run(&events).unwrap();
        assert_eq!(summary.observations, 100);
        assert_eq!(summary.publishes.len(), 2, "publishes at 50 and 100");
        assert_eq!(summary.queries, 1);
        assert_eq!(summary.answered, 1);
        assert_eq!(sched.store().epoch(), 2);
    }

    #[test]
    fn bad_observations_are_rejected_without_state_damage() {
        let mut sched = Scheduler::new(config(ModelKind::Exponential)).unwrap();
        assert!(sched.observe(1, f64::NAN).is_err());
        assert!(sched.observe(1, -1.0).is_err());
        assert_eq!(sched.ingested(), 0);
        assert!(sched.observe(1, 500.0).is_ok());
        assert_eq!(sched.ingested(), 1);
    }
}
