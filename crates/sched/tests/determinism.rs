//! The scheduler's two load-bearing differential suites:
//!
//! * **thread-count determinism** — the same event sequence replayed on
//!   1-thread and 4-thread rayon pools must produce bitwise-identical
//!   run summaries: every published store digest (epoch, machine map,
//!   every knot bit) and the order-sensitive query-answer digest;
//! * **streaming vs batch** — a machine fitted online from a stationary
//!   trace must serve the same policy the batch pipeline would have
//!   built: the initial streaming fit is bitwise the batch fit of the
//!   training prefix, and later cadence refits stay within
//!   `RACE_LL_SLACK` per observation of a batch refit of the same
//!   window.

use chs_dist::fit::{fit_model, StreamingFitConfig, RACE_LL_SLACK};
use chs_dist::{AvailabilityModel, Exponential, ModelKind, Weibull};
use chs_markov::{CheckpointCosts, CompressedPolicy, CompressionConfig};
use chs_sched::{Event, Scheduler, SchedulerConfig};
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;

fn config(kind: ModelKind, publish_every: u64) -> SchedulerConfig {
    let mut cfg = SchedulerConfig::new(
        StreamingFitConfig {
            kind,
            ..StreamingFitConfig::default()
        },
        CompressionConfig::new(CheckpointCosts::symmetric(110.0)),
    );
    cfg.publish_every = publish_every;
    cfg
}

/// A mixed-fleet event tape: `n_machines` streams (exponential and
/// Weibull generators interleaved round-robin) with a query burst after
/// every observation round. Fully determined by `seed`.
fn event_tape(n_machines: u64, rounds: usize, seed: u64) -> Vec<Event> {
    let exp = Exponential::from_mean(1_200.0).unwrap();
    let wbl = Weibull::new(0.6, 2_000.0).unwrap();
    let mut rngs: Vec<_> = (0..n_machines)
        .map(|m| rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ (m + 1)))
        .collect();
    let mut events = Vec::new();
    for round in 0..rounds {
        for m in 0..n_machines {
            let duration = if m % 2 == 0 {
                exp.sample(&mut rngs[m as usize])
            } else {
                wbl.sample(&mut rngs[m as usize])
            };
            events.push(Event::Observe {
                machine: m,
                duration,
            });
        }
        // Query every machine at a round-dependent age, including ages
        // past the compression horizon and machines still warming up.
        for m in 0..n_machines {
            events.push(Event::Query {
                machine: m,
                age: (round as f64) * 977.0,
            });
        }
    }
    events.push(Event::Publish);
    events
}

fn run_on_pool(threads: usize, events: &[Event]) -> chs_sched::RunSummary {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let mut sched = Scheduler::new(config(ModelKind::Weibull, 64)).unwrap();
        sched.run(events).unwrap()
    })
}

#[test]
fn one_thread_and_four_threads_replay_bitwise_identically() {
    let events = event_tape(6, 60, 2005);
    let single = run_on_pool(1, &events);
    let wide = run_on_pool(4, &events);
    assert!(
        !single.publishes.is_empty() && single.answered > 0,
        "tape must exercise publishes and answered queries"
    );
    assert_eq!(single, wide, "1-thread vs 4-thread run summaries diverged");
    // Belt and braces: the summary serializes identically too (this is
    // the fingerprint serve_bench commits).
    assert_eq!(
        serde_json::to_string(&single).unwrap(),
        serde_json::to_string(&wide).unwrap()
    );
}

#[test]
fn repeated_replays_of_one_tape_are_bitwise_identical() {
    let events = event_tape(4, 40, 7);
    let a = run_on_pool(2, &events);
    let b = run_on_pool(2, &events);
    assert_eq!(a, b);
}

#[test]
fn streaming_initial_fit_serves_the_batch_policy_bitwise() {
    // Feed exactly the training prefix the batch pipeline uses; the
    // scheduler must serve the policy compressed from the *batch* fit
    // of that prefix, bit for bit.
    let gen = Weibull::paper_exemplar();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let streaming = StreamingFitConfig {
        kind: ModelKind::Weibull,
        ..StreamingFitConfig::default()
    };
    let prefix_len = streaming.min_fit_observations;
    let prefix: Vec<f64> = (0..prefix_len).map(|_| gen.sample(&mut rng)).collect();

    let mut cfg = SchedulerConfig::new(
        streaming,
        CompressionConfig::new(CheckpointCosts::symmetric(110.0)),
    );
    cfg.publish_every = 0;
    let mut sched = Scheduler::new(cfg).unwrap();
    for &x in &prefix {
        sched.observe(42, x).unwrap();
    }
    sched.publish().unwrap();

    let batch_fit = fit_model(ModelKind::Weibull, &prefix).unwrap();
    let batch_table = CompressedPolicy::build(&batch_fit, &sched.config().compression).unwrap();
    for age in [0.0, 50.0, 3_600.0, 86_400.0, 5e6] {
        assert_eq!(
            sched.decide(42, age).unwrap().work_seconds.to_bits(),
            batch_table.next_interval(age).to_bits(),
            "streaming-served T_opt diverged from batch at age {age}"
        );
    }
}

#[test]
fn stationary_streaming_refit_stays_within_race_slack_of_batch() {
    // After cadence refits on a stationary trace, the streaming fit's
    // log-likelihood on its own window must be within RACE_LL_SLACK per
    // observation of a fresh batch fit of the same window — the same
    // contract the EM multi-start race keeps internally.
    let truth = Exponential::from_mean(900.0).unwrap();
    let mut cfg = config(ModelKind::HyperExponential { phases: 2 }, 0);
    cfg.streaming.refresh_every = Some(64);
    let mut sched = Scheduler::new(cfg).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
    // The comparison is only meaningful at a refit boundary (between
    // refits the window slides past the installed fit), so check every
    // cadence refresh after the first few.
    let mut checked = 0u64;
    for i in 0..1_000 {
        let trigger = sched.observe(7, truth.sample(&mut rng)).unwrap();
        if trigger.is_none() || i < 300 {
            continue;
        }
        let fit = sched.machine(7).unwrap();
        assert!(fit.refits() > 1, "cadence refits must have happened");
        let window = fit.refit_input();
        let streaming_model = fit.model().unwrap();
        let batch_model = fit_model(ModelKind::HyperExponential { phases: 2 }, &window).unwrap();
        let ll = |m: &chs_dist::FittedModel| {
            window
                .iter()
                .map(|&x| m.pdf(x).max(f64::MIN_POSITIVE).ln())
                .sum::<f64>()
        };
        let gap = ll(&batch_model) - ll(streaming_model);
        assert!(
            gap <= RACE_LL_SLACK * window.len() as f64,
            "streaming fit trails batch by {gap} nats on a {}-obs window",
            window.len()
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "too few refit boundaries exercised ({checked})"
    );
}
