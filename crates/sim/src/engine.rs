//! The per-trace simulation engine — a thin closed-form driver over the
//! shared [`chs_cycle`] state machine.
//!
//! The cycle arithmetic itself lives in [`chs_cycle::run_segment`]
//! (operation-for-operation identical to the loop that used to live
//! here; `tests/frozen_engine.rs` pins the port bitwise against a frozen
//! copy). This module owns only what is simulator-specific: validating
//! configurations and traces, and mapping failures into [`SimError`].

use crate::metrics::SimResult;
use crate::policy::SchedulePolicy;
use crate::{Result, SimError};
use chs_cycle::{run_trace, CycleObserver, NoopObserver};

/// Simulation parameters — the shared [`chs_cycle::CycleConfig`] under
/// its historical name.
pub use chs_cycle::CycleConfig as SimConfig;

/// Simulate a steady-state job over a machine's availability durations.
///
/// The job is assumed to have started before the first duration (the
/// paper's steady-state setup), so every segment begins with a recovery.
/// Returns the full accounting; see [`SimResult`].
pub fn simulate_trace(
    durations: &[f64],
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> Result<SimResult> {
    simulate_trace_observed(durations, policy, config, &mut NoopObserver)
}

/// [`simulate_trace`] with a [`CycleObserver`] attached to the single
/// engine pass — how [`crate::simulate_with_timeline`] records structure
/// without simulating twice.
pub fn simulate_trace_observed(
    durations: &[f64],
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
    obs: &mut dyn CycleObserver,
) -> Result<SimResult> {
    config
        .validate()
        .map_err(|message| SimError::InvalidConfig { message })?;
    if durations.iter().any(|d| !d.is_finite() || *d <= 0.0) {
        return Err(SimError::InvalidConfig {
            message: "durations must be finite and positive",
        });
    }
    let r = run_trace(durations, policy, config, obs);
    debug_assert!(
        r.conservation_residual().abs() <= 1e-6 * r.total_seconds.max(1.0),
        "time conservation violated: residual {}",
        r.conservation_residual()
    );
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedIntervalPolicy;

    fn cfg(c: f64) -> SimConfig {
        SimConfig::paper(c)
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig {
            checkpoint_cost: -1.0,
            ..cfg(50.0)
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            image_mb: f64::NAN,
            ..cfg(50.0)
        }
        .validate()
        .is_err());
        assert!(cfg(50.0).validate().is_ok());
    }

    #[test]
    fn rejects_bad_durations() {
        let p = FixedIntervalPolicy { interval: 100.0 };
        assert!(simulate_trace(&[100.0, -5.0], &p, &cfg(10.0)).is_err());
        assert!(simulate_trace(&[f64::INFINITY], &p, &cfg(10.0)).is_err());
    }

    #[test]
    fn bad_config_surfaces_as_sim_error() {
        let p = FixedIntervalPolicy { interval: 100.0 };
        let bad = SimConfig {
            recovery_cost: f64::INFINITY,
            ..cfg(10.0)
        };
        match simulate_trace(&[100.0], &p, &bad) {
            Err(SimError::InvalidConfig { .. }) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn hand_computed_single_segment() {
        // Segment 1000 s, R = C = 50, T = 200 fixed.
        // recovery: [0, 50); intervals: work 200 + ckpt 50 = 250 each.
        // 50 + 250k <= 1000 → k = 3 full intervals end at 800; next work
        // [800, 1000) needs 200 → 800+200 = 1000 >= 1000 → evicted at
        // boundary, 200 s lost.
        let p = FixedIntervalPolicy { interval: 200.0 };
        let r = simulate_trace(&[1_000.0], &p, &cfg(50.0)).unwrap();
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.checkpoints_committed, 3);
        assert_eq!(r.failures, 1);
        assert!((r.useful_seconds - 600.0).abs() < 1e-9);
        assert!((r.recovery_seconds - 50.0).abs() < 1e-9);
        assert!((r.checkpoint_seconds - 150.0).abs() < 1e-9);
        assert!((r.lost_seconds - 200.0).abs() < 1e-9);
        assert!((r.efficiency() - 0.6).abs() < 1e-12);
        // Bytes: 1 recovery + 3 checkpoints + 0 partial = 4 × 500 MB.
        assert!((r.megabytes - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_mid_checkpoint_counts_partial_bytes() {
        // Segment 330 s, R = C = 50, T = 200: recovery ends 50, work ends
        // 250, checkpoint would end 300 <= 330 → committed. Next work
        // [300, 330): 200 needed, evicted with 30 s lost.
        let p = FixedIntervalPolicy { interval: 200.0 };
        let r = simulate_trace(&[330.0], &p, &cfg(50.0)).unwrap();
        assert_eq!(r.checkpoints_committed, 1);
        assert!((r.lost_seconds - 30.0).abs() < 1e-9);

        // Segment 280: work ends 250, checkpoint cut at 280 (30/50 done).
        let r = simulate_trace(&[280.0], &p, &cfg(50.0)).unwrap();
        assert_eq!(r.checkpoints_committed, 0);
        assert_eq!(r.checkpoints_attempted, 1);
        assert!((r.lost_seconds - 230.0).abs() < 1e-9);
        let expected_mb = 500.0 + 500.0 * (30.0 / 50.0);
        assert!(
            (r.megabytes - expected_mb).abs() < 1e-9,
            "mb={}",
            r.megabytes
        );
    }

    #[test]
    fn eviction_mid_recovery() {
        let p = FixedIntervalPolicy { interval: 200.0 };
        let r = simulate_trace(&[20.0], &p, &cfg(50.0)).unwrap();
        assert_eq!(r.checkpoints_attempted, 0);
        assert_eq!(r.failures, 1);
        assert!((r.recovery_seconds - 20.0).abs() < 1e-9);
        assert!((r.megabytes - 500.0 * 20.0 / 50.0).abs() < 1e-9);
        assert_eq!(r.efficiency(), 0.0);
        // The refined ledger keeps the partial recovery visible instead of
        // folding it silently into the totals.
        assert!((r.partial_recovery_seconds - 20.0).abs() < 1e-9);
        assert!((r.partial_megabytes - 200.0).abs() < 1e-9);
        assert_eq!(r.recoveries_completed, 0);
    }

    #[test]
    fn recovery_bytes_can_be_excluded() {
        let p = FixedIntervalPolicy { interval: 200.0 };
        let mut config = cfg(50.0);
        config.count_recovery_bytes = false;
        let r = simulate_trace(&[1_000.0], &p, &config).unwrap();
        assert!((r.megabytes - 1_500.0).abs() < 1e-9); // 3 checkpoints only
    }

    #[test]
    fn conservation_over_many_segments() {
        let p = FixedIntervalPolicy { interval: 137.0 };
        let durations: Vec<f64> = (1..200)
            .map(|i| (i as f64 * 97.3) % 5_000.0 + 1.0)
            .collect();
        let r = simulate_trace(&durations, &p, &cfg(41.0)).unwrap();
        assert!(
            r.conservation_residual().abs() < 1e-6,
            "residual {}",
            r.conservation_residual()
        );
        assert_eq!(r.failures as usize, durations.len());
        assert_eq!(r.recoveries as usize, durations.len());
    }

    #[test]
    fn zero_cost_checkpoints_give_high_efficiency() {
        let p = FixedIntervalPolicy { interval: 10.0 };
        let mut config = cfg(0.0);
        config.recovery_cost = 0.0;
        let r = simulate_trace(&[10_000.0], &p, &config).unwrap();
        assert!(r.efficiency() > 0.99, "eff={}", r.efficiency());
    }

    #[test]
    fn shorter_checkpoint_cost_more_efficiency_less_loss() {
        let p = FixedIntervalPolicy { interval: 500.0 };
        let durations: Vec<f64> = (0..100)
            .map(|i| 2_000.0 + (i as f64 * 131.7) % 6_000.0)
            .collect();
        let fast = simulate_trace(&durations, &p, &cfg(50.0)).unwrap();
        let slow = simulate_trace(&durations, &p, &cfg(500.0)).unwrap();
        assert!(fast.efficiency() > slow.efficiency());
    }
}
