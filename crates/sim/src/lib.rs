//! Trace-driven discrete-event simulation of checkpointed execution
//! (paper §5.1).
//!
//! A long-running job executes on one machine whose availability is given
//! by a recorded trace. Within each availability segment the job:
//!
//! 1. **recovers** from its last checkpoint (`R` seconds),
//! 2. repeatedly asks its [`policy::SchedulePolicy`] for a work interval
//!    `T` (a function of the machine's current age), works `T` seconds,
//!    and **checkpoints** (`C` seconds),
//! 3. **fails** when the segment ends: work since the last completed
//!    checkpoint is lost, and the cycle restarts with a recovery on the
//!    next segment.
//!
//! The simulator credits *useful work* only for work intervals whose
//! checkpoint committed, and accounts every transferred megabyte —
//! recoveries, completed checkpoints, and the partial bytes of transfers
//! cut off by eviction — reproducing both metrics of the paper's Figures
//! 3–4 and Tables 1–3.

#![deny(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod policy;
pub mod sweep;
pub mod timeline;

pub use engine::{simulate_trace, simulate_trace_observed, SimConfig};
pub use metrics::SimResult;
pub use policy::{CachedPolicy, FixedIntervalPolicy, ModelPolicy, SchedulePolicy};
pub use sweep::{
    prepare_experiments, prepare_experiments_reported, prepare_experiments_resilient,
    sweep_paper_grid, sweep_paper_grid_reference, sweep_paper_grid_serial, FitFailureCount,
    FitFallback, MachineExperiment, PrepareReport, PreparedExperiments, SweepCell, SweepGrid,
};
pub use timeline::{
    simulate_with_timeline, IntervalOutcome, IntervalRecord, SegmentRecord, Timeline,
    TimelineBuilder,
};

/// Errors from the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Configuration rejected (non-finite costs, empty trace, …).
    InvalidConfig {
        /// What was wrong.
        message: &'static str,
    },
    /// A policy failed to produce an interval.
    Policy(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
            SimError::Policy(e) => write!(f, "policy failure: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
