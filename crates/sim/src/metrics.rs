//! Simulation accounting.

use serde::{Deserialize, Serialize};

/// Outcome of simulating one job over one availability trace.
///
/// Time conservation holds exactly:
/// `useful + lost + recovery + checkpoint = total_available`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Seconds of work credited (work intervals whose checkpoint
    /// committed).
    pub useful_seconds: f64,
    /// Seconds spent on work or partial checkpoints that were lost to
    /// failures.
    pub lost_seconds: f64,
    /// Seconds spent in recovery phases (completed or cut off).
    pub recovery_seconds: f64,
    /// Seconds spent in checkpoint phases that committed.
    pub checkpoint_seconds: f64,
    /// Total machine-available seconds consumed by the simulation.
    pub total_seconds: f64,
    /// Megabytes that crossed the network: recoveries + checkpoints,
    /// including the partial bytes of interrupted transfers.
    pub megabytes: f64,
    /// Checkpoints that committed.
    pub checkpoints_committed: u64,
    /// Checkpoint attempts (committed + interrupted).
    pub checkpoints_attempted: u64,
    /// Recovery attempts.
    pub recoveries: u64,
    /// Failures (availability segments that ended while the job held the
    /// machine).
    pub failures: u64,
}

impl SimResult {
    /// Fraction of available machine time spent doing useful work —
    /// the y-axis of the paper's Figure 3.
    pub fn efficiency(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.useful_seconds / self.total_seconds
        } else {
            0.0
        }
    }

    /// Network megabytes per hour of available machine time —
    /// the normalization used in Tables 4–5.
    pub fn megabytes_per_hour(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.megabytes / (self.total_seconds / 3_600.0)
        } else {
            0.0
        }
    }

    /// Exact time-conservation residual (should be ~0; exposed so tests
    /// and assertions can check it).
    pub fn conservation_residual(&self) -> f64 {
        self.useful_seconds + self.lost_seconds + self.recovery_seconds + self.checkpoint_seconds
            - self.total_seconds
    }

    /// Merge another result into this one (summing a job's lifetime over
    /// several traces, or a pool of machines into an aggregate).
    pub fn absorb(&mut self, other: &SimResult) {
        self.useful_seconds += other.useful_seconds;
        self.lost_seconds += other.lost_seconds;
        self.recovery_seconds += other.recovery_seconds;
        self.checkpoint_seconds += other.checkpoint_seconds;
        self.total_seconds += other.total_seconds;
        self.megabytes += other.megabytes;
        self.checkpoints_committed += other.checkpoints_committed;
        self.checkpoints_attempted += other.checkpoints_attempted;
        self.recoveries += other.recoveries;
        self.failures += other.failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_and_rates() {
        let r = SimResult {
            useful_seconds: 3_600.0,
            total_seconds: 7_200.0,
            megabytes: 1_000.0,
            ..Default::default()
        };
        assert!((r.efficiency() - 0.5).abs() < 1e-12);
        assert!((r.megabytes_per_hour() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = SimResult::default();
        assert_eq!(r.efficiency(), 0.0);
        assert_eq!(r.megabytes_per_hour(), 0.0);
        assert_eq!(r.conservation_residual(), 0.0);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = SimResult {
            useful_seconds: 10.0,
            total_seconds: 20.0,
            failures: 2,
            ..Default::default()
        };
        let b = SimResult {
            useful_seconds: 5.0,
            total_seconds: 10.0,
            failures: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.useful_seconds, 15.0);
        assert_eq!(a.total_seconds, 30.0);
        assert_eq!(a.failures, 3);
        assert!((a.efficiency() - 0.5).abs() < 1e-12);
    }
}
