//! Simulation accounting — the shared [`chs_cycle::CycleAccounting`]
//! ledger under its historical simulator name. Field names, meanings,
//! and update arithmetic are unchanged from the original `SimResult`
//! (the unified ledger is a strict superset: it adds full/partial
//! megabyte splits, uncommitted-work seconds, and partial recovery
//! time).

/// Outcome of simulating one job over one availability trace.
pub use chs_cycle::CycleAccounting as SimResult;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_and_rates() {
        let r = SimResult {
            useful_seconds: 3_600.0,
            total_seconds: 7_200.0,
            megabytes: 1_000.0,
            ..Default::default()
        };
        assert!((r.efficiency() - 0.5).abs() < 1e-12);
        assert!((r.megabytes_per_hour() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = SimResult::default();
        assert_eq!(r.efficiency(), 0.0);
        assert_eq!(r.megabytes_per_hour(), 0.0);
        assert_eq!(r.conservation_residual(), 0.0);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = SimResult {
            useful_seconds: 10.0,
            total_seconds: 20.0,
            failures: 2,
            ..Default::default()
        };
        let b = SimResult {
            useful_seconds: 5.0,
            total_seconds: 10.0,
            failures: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.useful_seconds, 15.0);
        assert_eq!(a.total_seconds, 30.0);
        assert_eq!(a.failures, 3);
        assert!((a.efficiency() - 0.5).abs() < 1e-12);
    }
}
