//! Schedule policies: how the simulated job chooses its next work
//! interval.

use crate::{Result, SimError};
use chs_dist::{AvailabilityModel, FittedModel};
use chs_markov::{CheckpointCosts, VaidyaModel};
use std::sync::Arc;

/// The policy interface, shared with every other executor via
/// [`chs_cycle`].
pub use chs_cycle::SchedulePolicy;

/// Fixed periodic interval — the classical baseline every
/// checkpoint-interval paper compares against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedIntervalPolicy {
    /// The constant work interval, seconds.
    pub interval: f64,
}

impl SchedulePolicy for FixedIntervalPolicy {
    fn next_interval(&self, _age: f64) -> f64 {
        self.interval
    }
    fn label(&self) -> String {
        format!("fixed({} s)", self.interval)
    }
}

/// The paper's policy: Vaidya `T_opt` from a fitted availability model,
/// recomputed at the machine's current age (aperiodic for non-memoryless
/// families).
///
/// The model is held behind an [`Arc`] so pool sweeps can share one fit
/// across every checkpoint-cost cell instead of cloning the fit per cell.
/// The `VaidyaModel` is constructed **once**, at policy construction —
/// per-interval calls reuse it (and its fresh-quantity memo) instead of
/// paying bound derivation and a cold memo on every schedule decision.
pub struct ModelPolicy {
    model: Arc<FittedModel>,
    /// `None` only for pathological costs that `VaidyaModel` rejects; the
    /// policy then degrades to the conservative one-mean-lifetime default.
    vaidya: Option<VaidyaModel<'static>>,
}

impl ModelPolicy {
    /// Bind a fitted model to the phase costs. Accepts either an owned
    /// `FittedModel` or an `Arc<FittedModel>` shared with other policies.
    pub fn new(model: impl Into<Arc<FittedModel>>, costs: CheckpointCosts) -> Self {
        let model = model.into();
        let vaidya = VaidyaModel::shared(Arc::clone(&model), costs).ok();
        Self { model, vaidya }
    }

    /// The model in use.
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    fn t_opt(&self, age: f64) -> Result<f64> {
        let vaidya = self
            .vaidya
            .as_ref()
            .ok_or_else(|| SimError::Policy("invalid checkpoint costs".into()))?;
        Ok(vaidya
            .optimal_interval(age)
            .map_err(|e| SimError::Policy(e.to_string()))?
            .work_seconds)
    }
}

impl SchedulePolicy for ModelPolicy {
    fn next_interval(&self, age: f64) -> f64 {
        // A policy failure (extraordinarily pathological fits) degrades to
        // a conservative default rather than aborting a pool-wide sweep:
        // one mean lifetime per checkpoint.
        self.t_opt(age)
            .unwrap_or_else(|_| self.model.mean().max(1.0))
    }
    fn label(&self) -> String {
        self.model.kind().label()
    }
}

/// [`ModelPolicy`] with `T_opt(age)` precomputed on a geometric age grid
/// and interpolated log-linearly. The sweep over 640 machines × 10
/// checkpoint costs × 4 models would otherwise re-run golden-section
/// search hundreds of times per availability segment.
///
/// For memoryless models the grid degenerates to a single entry.
///
/// The grid is filled through **one** [`VaidyaModel`] (so its
/// fresh-quantity memo persists across ages) and each age's search is
/// warm-started from the neighboring age's `T_opt` — valid because
/// `T_opt(age)` varies smoothly for the paper's families, and guarded by
/// the full-bracket fallback inside
/// [`VaidyaModel::optimal_interval_near`].
pub struct CachedPolicy {
    inner: ModelPolicy,
    grid_ages: Vec<f64>,
    grid_t: Vec<f64>,
}

/// Number of grid points used by [`CachedPolicy`].
pub const CACHE_GRID_POINTS: usize = 64;

impl CachedPolicy {
    /// Precompute the cache. `max_age` should cover the longest
    /// availability segment the simulation will encounter (ages beyond it
    /// clamp to the last grid value, which is safe because `T_opt(age)`
    /// flattens as conditioning saturates).
    pub fn new(model: impl Into<Arc<FittedModel>>, costs: CheckpointCosts, max_age: f64) -> Self {
        Self::build(model.into(), costs, max_age, true)
    }

    /// Like [`CachedPolicy::new`] but with every grid point searched from
    /// the full log-space bracket (no warm starting). This is the pre-
    /// optimization fill, kept as the baseline the sweep benchmark times
    /// against; simulations built on it behave identically up to the
    /// optimizer's floor precision (~1e-8 relative in `T_opt`).
    pub fn new_cold(
        model: impl Into<Arc<FittedModel>>,
        costs: CheckpointCosts,
        max_age: f64,
    ) -> Self {
        Self::build(model.into(), costs, max_age, false)
    }

    fn build(model: Arc<FittedModel>, costs: CheckpointCosts, max_age: f64, warm: bool) -> Self {
        let inner = ModelPolicy::new(Arc::clone(&model), costs);
        if inner.model.kind().is_memoryless() {
            let t = inner.next_interval(0.0);
            return Self {
                inner,
                grid_ages: vec![0.0],
                grid_t: vec![t],
            };
        }
        // Geometric grid from 1 s to max_age, plus the exact age-0 point.
        let max_age = max_age.max(10.0);
        let n = CACHE_GRID_POINTS;
        let mut grid_ages = Vec::with_capacity(n + 1);
        grid_ages.push(0.0);
        let lo: f64 = 1.0;
        let ratio = (max_age / lo).powf(1.0 / (n as f64 - 1.0));
        let mut a = lo;
        for _ in 0..n {
            grid_ages.push(a);
            a *= ratio;
        }
        let mut grid_t = Vec::with_capacity(grid_ages.len());
        // Fill through the inner policy's own VaidyaModel: one optimizer,
        // one fresh-quantity memo, shared between grid fill and any later
        // direct `inner` use.
        match &inner.vaidya {
            Some(vaidya) => {
                // Ascending ages: each solved point seeds the next. With
                // two solved neighbors the seed is the log-linear
                // extrapolation of their optima — `T_opt(age)` drifts
                // smoothly along the geometric age grid, so extrapolating
                // cancels the first-order drift and leaves the warm search
                // a second-order-small correction. Any single-point
                // failure degrades to the conservative default (one mean
                // lifetime) and clears the seeds.
                let mut prev: Option<f64> = None;
                let mut prev2: Option<f64> = None;
                for &age in &grid_ages {
                    let hint = match (prev, prev2) {
                        (Some(p), Some(q)) => Some((2.0 * p.ln() - q.ln()).exp()),
                        (Some(p), None) => Some(p),
                        _ => None,
                    };
                    let solved = match hint.filter(|_| warm) {
                        Some(h) => vaidya.optimal_interval_near(age, h),
                        None => vaidya.optimal_interval(age),
                    };
                    match solved {
                        Ok(opt) => {
                            prev2 = prev;
                            prev = Some(opt.work_seconds);
                            grid_t.push(opt.work_seconds);
                        }
                        Err(_) => {
                            prev = None;
                            prev2 = None;
                            grid_t.push(model.mean().max(1.0));
                        }
                    }
                }
            }
            // Pathological costs/fit: same conservative default the
            // uncached ModelPolicy falls back to.
            None => grid_t.resize(grid_ages.len(), model.mean().max(1.0)),
        }
        Self {
            inner,
            grid_ages,
            grid_t,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &FittedModel {
        self.inner.model()
    }
}

impl SchedulePolicy for CachedPolicy {
    fn next_interval(&self, age: f64) -> f64 {
        let ages = &self.grid_ages;
        let ts = &self.grid_t;
        // A NaN age would poison the binary search's comparator; the
        // shared guard maps it to age 0 (the youngest, most conservative
        // interval) instead of panicking mid-sweep.
        let age = chs_cycle::sanitize_age(age);
        if ts.len() == 1 || age <= ages[0] {
            return ts[0];
        }
        match ages.binary_search_by(|probe| probe.partial_cmp(&age).expect("finite grid")) {
            Ok(i) => ts[i],
            Err(i) if i >= ages.len() => *ts.last().expect("nonempty grid"),
            Err(i) => {
                // Log-linear interpolation in age (grid is geometric).
                let (a0, a1) = (ages[i - 1].max(1e-9), ages[i]);
                let (t0, t1) = (ts[i - 1], ts[i]);
                let w = ((age.max(1e-9) / a0).ln() / (a1 / a0).ln()).clamp(0.0, 1.0);
                t0 + w * (t1 - t0)
            }
        }
    }
    fn label(&self) -> String {
        self.inner.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chs_dist::fit::fit_model;
    use chs_dist::{ModelKind, Weibull};
    use rand::SeedableRng;

    fn weibull_fit() -> FittedModel {
        let truth = Weibull::paper_exemplar();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let data: Vec<f64> = (0..400).map(|_| truth.sample(&mut rng)).collect();
        fit_model(ModelKind::Weibull, &data).unwrap()
    }

    #[test]
    fn fixed_policy_is_constant() {
        let p = FixedIntervalPolicy { interval: 600.0 };
        assert_eq!(p.next_interval(0.0), 600.0);
        assert_eq!(p.next_interval(1e6), 600.0);
        assert!(p.label().contains("600"));
    }

    #[test]
    fn model_policy_matches_vaidya_directly() {
        let fit = weibull_fit();
        let costs = CheckpointCosts::symmetric(110.0);
        let policy = ModelPolicy::new(fit.clone(), costs);
        let vaidya = VaidyaModel::new(&fit, costs).unwrap();
        for &age in &[0.0, 100.0, 10_000.0] {
            let direct = vaidya.optimal_interval(age).unwrap().work_seconds;
            assert!(
                (policy.next_interval(age) - direct).abs() < 1e-9,
                "age={age}"
            );
        }
    }

    #[test]
    fn cached_policy_close_to_exact() {
        let fit = weibull_fit();
        let costs = CheckpointCosts::symmetric(110.0);
        let exact = ModelPolicy::new(fit.clone(), costs);
        let cached = CachedPolicy::new(fit, costs, 400_000.0);
        for &age in &[0.0, 3.0, 57.0, 333.0, 4_096.0, 70_000.0, 350_000.0] {
            let e = exact.next_interval(age);
            let c = cached.next_interval(age);
            assert!(
                (c / e - 1.0).abs() < 0.05,
                "age={age}: cached {c} vs exact {e}"
            );
        }
    }

    #[test]
    fn cached_policy_clamps_beyond_grid() {
        let fit = weibull_fit();
        let cached = CachedPolicy::new(fit, CheckpointCosts::symmetric(110.0), 10_000.0);
        let at_edge = cached.next_interval(10_000.0);
        let beyond = cached.next_interval(1e9);
        assert!((beyond - at_edge).abs() < 1e-9 * at_edge.max(1.0) || beyond >= at_edge);
    }

    #[test]
    fn cached_policy_nan_age_is_conservative_not_panic() {
        let fit = weibull_fit();
        let cached = CachedPolicy::new(fit, CheckpointCosts::symmetric(110.0), 100_000.0);
        let at_zero = cached.next_interval(0.0);
        assert_eq!(cached.next_interval(f64::NAN), at_zero);
        // Infinities stay well-defined too: +inf clamps to the oldest
        // grid entry, -inf to the youngest.
        assert_eq!(
            cached.next_interval(f64::INFINITY),
            *cached.grid_t.last().unwrap()
        );
        assert_eq!(cached.next_interval(f64::NEG_INFINITY), at_zero);
    }

    #[test]
    fn cold_and_warm_fill_agree_to_optimizer_floor() {
        let fit = Arc::new(weibull_fit());
        let costs = CheckpointCosts::symmetric(110.0);
        let warm = CachedPolicy::new(Arc::clone(&fit), costs, 400_000.0);
        let cold = CachedPolicy::new_cold(fit, costs, 400_000.0);
        for (w, c) in warm.grid_t.iter().zip(&cold.grid_t) {
            assert!(
                ((w - c) / c).abs() < 1e-6,
                "warm {w} vs cold {c} beyond optimizer floor"
            );
        }
    }

    #[test]
    fn arc_shared_model_needs_no_clone() {
        let fit = Arc::new(weibull_fit());
        let a = CachedPolicy::new(Arc::clone(&fit), CheckpointCosts::symmetric(50.0), 1e4);
        let b = CachedPolicy::new(Arc::clone(&fit), CheckpointCosts::symmetric(500.0), 1e4);
        // Both policies alias the same fit.
        assert!(std::ptr::eq(a.model(), b.model()));
    }

    #[test]
    fn cached_exponential_single_entry() {
        let data: Vec<f64> = (1..100).map(|i| 100.0 * i as f64).collect();
        let fit = fit_model(ModelKind::Exponential, &data).unwrap();
        let cached = CachedPolicy::new(fit, CheckpointCosts::symmetric(50.0), 1e6);
        let a = cached.next_interval(0.0);
        let b = cached.next_interval(5e5);
        assert_eq!(a, b, "memoryless cache must be constant");
        assert!(cached.label().contains("Exponential"));
    }
}
