//! Pool-wide parameter sweeps: the engine behind Figures 3–4 and
//! Tables 1 & 3.
//!
//! For every machine, fit all four paper models on the training prefix of
//! its trace; then for every checkpoint cost `C` in the grid and every
//! model, simulate the experimental remainder and record per-machine
//! efficiency and network load.
//!
//! The sweep is one flat rayon fan-out over `(machine × C × model)` work
//! items — the full width of the grid, not just the C axis — so every
//! core stays busy even when `|C| <` core count. Results reduce back into
//! [`SweepGrid`] cells by index arithmetic, which keeps per-machine
//! vectors aligned with the experiment list (downstream paired t-tests
//! compare models machine-by-machine) and makes the output independent of
//! rayon's scheduling. Per-machine `max_age` is hoisted out of the C ×
//! model loops, and fits are shared by `Arc` instead of being cloned into
//! every cell.

use crate::engine::{simulate_trace, SimConfig};
use crate::metrics::SimResult;
use crate::policy::{CachedPolicy, FixedIntervalPolicy};
use chs_dist::fit::fit_model;
use chs_dist::{Exponential, FittedModel, ModelKind};
use chs_markov::CheckpointCosts;
use chs_net::FaultPlan;
use chs_sched::ingest::{fit_batch, FitItem};
use chs_stats::mean;
use chs_trace::{MachineId, MachinePool};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which policy tier a `(machine, family)` slot runs on after
/// fit-failure handling: the requested family, the exponential-MLE
/// fallback, or Young's fixed interval — the resilient prepare's
/// degradation chain ([`prepare_experiments_resilient`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitFallback {
    /// The requested family fitted normally.
    Native,
    /// The family's fit failed (or was injected to fail); the slot runs
    /// on an exponential-MLE fit of the same training prefix.
    Exponential,
    /// Even the exponential fallback failed; the slot runs on the fixed
    /// interval `√(2·C·mean_train)`.
    Fixed,
}

/// One machine prepared for the sweep: its four fitted models plus the
/// held-out experimental durations.
#[derive(Debug, Clone)]
pub struct MachineExperiment {
    /// Which machine.
    pub machine: MachineId,
    /// Fitted models, in [`ModelKind::PAPER_SET`] order, shared with
    /// every sweep cell that simulates this machine.
    pub fits: Vec<Arc<FittedModel>>,
    /// Policy tier per family, aligned with `fits`. All `Native` from
    /// the classic prepare; the resilient prepare records which slots
    /// degraded (a `Fixed` slot's `fits` entry is a placeholder the
    /// sweep never consults).
    pub fallbacks: Vec<FitFallback>,
    /// Mean of the training prefix: the MTTF estimate Young's fixed
    /// interval uses when a slot degrades all the way to `Fixed`.
    pub mean_train: f64,
    /// The experimental (held-out) durations.
    pub test_durations: Vec<f64>,
}

impl MachineExperiment {
    /// The longest held-out availability duration: the age ceiling the
    /// machine's `T_opt` caches must cover.
    pub fn max_age(&self) -> f64 {
        self.test_durations.iter().cloned().fold(0.0f64, f64::max)
    }
}

/// Per-family fit-failure tally inside a [`PrepareReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitFailureCount {
    /// Which estimator failed.
    pub kind: ModelKind,
    /// On how many machines it failed.
    pub failures: usize,
}

/// Accounting for the prepare phase: how many machines entered, how many
/// survived, and why the rest were dropped — previously a silent
/// `.ok()?` discard of the whole machine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrepareReport {
    /// Machines in the input pool.
    pub machines_total: usize,
    /// Machines with all four fits (length of the experiment list).
    pub machines_usable: usize,
    /// Machines dropped because the trace was too short to split into
    /// the training prefix plus a non-empty experimental remainder.
    pub dropped_short_trace: usize,
    /// Machines dropped because at least one estimator failed.
    pub dropped_fit_failure: usize,
    /// Which estimator failed, per family in [`ModelKind::PAPER_SET`]
    /// order (a machine defeating several estimators counts once in
    /// each).
    pub fit_failures: Vec<FitFailureCount>,
    /// Slots the resilient prepare degraded to the exponential-MLE
    /// fallback instead of dropping the machine (always 0 from the
    /// classic prepare).
    pub fallback_exponential: usize,
    /// Slots that degraded past the exponential fallback to Young's
    /// fixed interval (always 0 from the classic prepare).
    pub fallback_fixed: usize,
}

/// [`prepare_experiments`] plus its [`PrepareReport`].
#[derive(Debug, Clone)]
pub struct PreparedExperiments {
    /// The machines that survived, with all four fits.
    pub experiments: Vec<MachineExperiment>,
    /// Drop accounting.
    pub report: PrepareReport,
}

/// Fit the paper's four models to every machine's training prefix,
/// reporting machines dropped per reason.
///
/// Machines that cannot be split (too few observations) or whose data
/// defeats one of the estimators are dropped, mirroring the paper's
/// "chosen a sufficient number of times" filter.
///
/// The fits run as one flat rayon fan-out over `(machine × model)` work
/// items — four items per machine instead of one, so the pool's cores
/// stay busy even when a few machines' EM fits dominate — with an
/// index-aligned reduction (item `ei·4 + mi` is machine `ei`, family
/// `mi`). Every fit depends only on its own training prefix and results
/// are reduced in input order, so the output is bitwise-identical for
/// any thread count (pinned by `tests/prepare_determinism.rs`).
pub fn prepare_experiments_reported(pool: &MachinePool, train_len: usize) -> PreparedExperiments {
    let kinds = ModelKind::PAPER_SET;
    let n_k = kinds.len();

    // Serial split pass (cheap): keep machines long enough to train on.
    let mut splits: Vec<(MachineId, Vec<f64>, Vec<f64>)> = Vec::new();
    let mut dropped_short_trace = 0usize;
    for trace in pool.traces() {
        match trace.split(train_len) {
            Ok((train, test)) if !test.is_empty() => splits.push((trace.machine, train, test)),
            _ => dropped_short_trace += 1,
        }
    }

    // Flat fan-out: one work item per (machine, family), routed through
    // the online scheduler's shared ingest path — batch prepare is a
    // replay of the same fan-out the serving loop uses.
    let items: Vec<FitItem<'_>> = splits
        .iter()
        .flat_map(|(_, train, _)| kinds.iter().map(|&kind| FitItem::new(kind, train)))
        .collect();
    let fits = fit_batch(&items);

    // Index-aligned reduction in machine order.
    let mut experiments = Vec::with_capacity(splits.len());
    let mut fit_failures: Vec<FitFailureCount> = kinds
        .iter()
        .map(|&kind| FitFailureCount { kind, failures: 0 })
        .collect();
    let mut dropped_fit_failure = 0usize;
    let mut fit_iter = fits.into_iter();
    for (machine, train, test) in splits {
        let family: Vec<chs_dist::Result<FittedModel>> = (0..n_k)
            .map(|_| {
                fit_iter
                    .next()
                    .expect("index-aligned")
                    .expect("every classic-prepare item is enabled")
            })
            .collect();
        if family.iter().all(Result::is_ok) {
            experiments.push(MachineExperiment {
                machine,
                fits: family
                    .into_iter()
                    .map(|fit| Arc::new(fit.expect("checked ok")))
                    .collect(),
                fallbacks: vec![FitFallback::Native; n_k],
                mean_train: mean(&train),
                test_durations: test,
            });
        } else {
            dropped_fit_failure += 1;
            for (mi, fit) in family.iter().enumerate() {
                if fit.is_err() {
                    fit_failures[mi].failures += 1;
                }
            }
        }
    }

    let report = PrepareReport {
        machines_total: pool.len(),
        machines_usable: experiments.len(),
        dropped_short_trace,
        dropped_fit_failure,
        fit_failures,
        fallback_exponential: 0,
        fallback_fixed: 0,
    };
    PreparedExperiments {
        experiments,
        report,
    }
}

/// [`prepare_experiments_reported`] without the drop accounting — the
/// original surface, kept for callers that only need the experiments.
pub fn prepare_experiments(pool: &MachinePool, train_len: usize) -> Vec<MachineExperiment> {
    prepare_experiments_reported(pool, train_len).experiments
}

/// Degradation chain for one `(machine, family)` slot: exponential-MLE
/// fit of the same training prefix, then Young's fixed interval. The
/// `Fixed` tier's fit entry is a placeholder ([`run_cell_item`] switches
/// to [`FixedIntervalPolicy`] and never consults it).
fn degraded_slot(train: &[f64], mean_train: f64) -> (FittedModel, FitFallback) {
    match fit_model(ModelKind::Exponential, train) {
        Ok(fit) => (fit, FitFallback::Exponential),
        Err(_) => (
            FittedModel::Exponential(
                Exponential::from_mean(mean_train.max(1.0)).expect("positive mean"),
            ),
            FitFallback::Fixed,
        ),
    }
}

/// Fault-aware prepare: like [`prepare_experiments_reported`], but a fit
/// failure — natural, or injected through `plan.fit_failure(machine,
/// family)` — **degrades the slot instead of dropping the machine**:
/// first to an exponential-MLE fit of the same training prefix, then to
/// Young's fixed interval `√(2·C·mean_train)`. Only short traces are
/// still dropped (nothing can be fitted to them); every degradation is
/// counted in the report, so no machine leaves the sweep silently.
pub fn prepare_experiments_resilient(
    pool: &MachinePool,
    train_len: usize,
    plan: &FaultPlan,
) -> PreparedExperiments {
    let kinds = ModelKind::PAPER_SET;
    let n_k = kinds.len();

    let mut splits: Vec<(MachineId, Vec<f64>, Vec<f64>)> = Vec::new();
    let mut dropped_short_trace = 0usize;
    for trace in pool.traces() {
        match trace.split(train_len) {
            Ok((train, test)) if !test.is_empty() => splits.push((trace.machine, train, test)),
            _ => dropped_short_trace += 1,
        }
    }

    // Same shared ingest fan-out as the classic prepare; injected
    // failures become disabled items that skip the native fit entirely
    // (the paper's estimator "fails" by decree) while keeping their
    // slot in the index-aligned result.
    let items: Vec<FitItem<'_>> = splits
        .iter()
        .flat_map(|(machine, train, _)| {
            kinds.iter().enumerate().map(move |(mi, &kind)| {
                if plan.fit_failure(machine.0 as u64, mi as u64) {
                    FitItem::disabled(kind, train)
                } else {
                    FitItem::new(kind, train)
                }
            })
        })
        .collect();
    let fits = fit_batch(&items);

    let mut experiments = Vec::with_capacity(splits.len());
    let mut fit_failures: Vec<FitFailureCount> = kinds
        .iter()
        .map(|&kind| FitFailureCount { kind, failures: 0 })
        .collect();
    let mut fallback_exponential = 0usize;
    let mut fallback_fixed = 0usize;
    let mut fit_iter = fits.into_iter();
    for (machine, train, test) in splits {
        let mean_train = mean(&train);
        let mut slot_fits = Vec::with_capacity(n_k);
        let mut fallbacks = Vec::with_capacity(n_k);
        for counter in fit_failures.iter_mut().take(n_k) {
            let native = fit_iter.next().expect("index-aligned");
            let (fit, tier) = match native {
                Some(Ok(fit)) => (fit, FitFallback::Native),
                Some(Err(_)) => {
                    counter.failures += 1;
                    degraded_slot(&train, mean_train)
                }
                None => degraded_slot(&train, mean_train),
            };
            match tier {
                FitFallback::Native => {}
                FitFallback::Exponential => fallback_exponential += 1,
                FitFallback::Fixed => fallback_fixed += 1,
            }
            slot_fits.push(Arc::new(fit));
            fallbacks.push(tier);
        }
        experiments.push(MachineExperiment {
            machine,
            fits: slot_fits,
            fallbacks,
            mean_train,
            test_durations: test,
        });
    }

    let report = PrepareReport {
        machines_total: pool.len(),
        machines_usable: experiments.len(),
        dropped_short_trace,
        dropped_fit_failure: 0,
        fit_failures,
        fallback_exponential,
        fallback_fixed,
    };
    PreparedExperiments {
        experiments,
        report,
    }
}

/// The per-(C, model) cell of a sweep: per-machine metrics, index-aligned
/// with the experiment list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepCell {
    /// Efficiency per machine.
    pub efficiency: Vec<f64>,
    /// Network megabytes per machine.
    pub megabytes: Vec<f64>,
    /// Full accounting aggregated over the pool.
    pub aggregate: SimResult,
}

/// Results of a full grid sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepGrid {
    /// The checkpoint costs on the grid (seconds).
    pub c_values: Vec<f64>,
    /// The models, in [`ModelKind::PAPER_SET`] order.
    pub models: Vec<ModelKind>,
    /// `cells[c_index][model_index]`.
    pub cells: Vec<Vec<SweepCell>>,
    /// Machines included (same order as each cell's vectors).
    pub machines: Vec<MachineId>,
}

impl SweepGrid {
    /// Mean efficiency for `(c_index, model_index)`.
    pub fn mean_efficiency(&self, c_index: usize, model_index: usize) -> f64 {
        mean(&self.cells[c_index][model_index].efficiency)
    }

    /// Mean megabytes for `(c_index, model_index)`.
    pub fn mean_megabytes(&self, c_index: usize, model_index: usize) -> f64 {
        mean(&self.cells[c_index][model_index].megabytes)
    }
}

/// The checkpoint-cost grid of the paper's Figures 3–4 / Tables 1 & 3.
pub const PAPER_C_GRID: [f64; 10] = [
    50.0, 100.0, 200.0, 250.0, 400.0, 500.0, 750.0, 1_000.0, 1_250.0, 1_500.0,
];

/// Simulate one `(machine, C, model)` work item and return its metrics.
fn run_cell_item(
    exp: &MachineExperiment,
    model_index: usize,
    c: f64,
    max_age: f64,
    image_mb: f64,
    warm: bool,
) -> SimResult {
    let mut config = SimConfig::paper(c);
    config.image_mb = image_mb;
    // A slot degraded past the exponential fallback schedules with
    // Young's fixed interval; its fit entry is a placeholder.
    if exp.fallbacks.get(model_index) == Some(&FitFallback::Fixed) {
        let policy = FixedIntervalPolicy {
            interval: (2.0 * c.max(0.0) * exp.mean_train).sqrt().max(1.0),
        };
        return simulate_trace(&exp.test_durations, &policy, &config).expect("validated durations");
    }
    let fit = Arc::clone(&exp.fits[model_index]);
    let costs = CheckpointCosts::symmetric(c);
    let policy = if warm {
        CachedPolicy::new(fit, costs, max_age)
    } else {
        CachedPolicy::new_cold(fit, costs, max_age)
    };
    simulate_trace(&exp.test_durations, &policy, &config).expect("validated durations")
}

/// Run the full sweep: for every C and model, simulate every machine's
/// experimental trace under the model's cached `T_opt` policy.
///
/// One flat parallel map over `machine × C × model` work items; the
/// reduction into cells is pure index arithmetic, so results are
/// identical for any thread count (and bitwise-equal to
/// [`sweep_paper_grid_reference`]).
pub fn sweep_paper_grid(
    experiments: &[MachineExperiment],
    c_values: &[f64],
    image_mb: f64,
) -> SweepGrid {
    let models: Vec<ModelKind> = ModelKind::PAPER_SET.to_vec();
    let machines: Vec<MachineId> = experiments.iter().map(|e| e.machine).collect();
    let n_c = c_values.len();
    let n_k = models.len();
    let n_items = experiments.len() * n_c * n_k;

    // Hoisted out of the C × model loops: one max-age scan per machine
    // instead of one per cell.
    let max_ages: Vec<f64> = experiments.iter().map(MachineExperiment::max_age).collect();

    // Item index layout: ei * (n_c * n_k) + ci * n_k + mi.
    let results: Vec<SimResult> = (0..n_items)
        .into_par_iter()
        .map(|idx| {
            let ei = idx / (n_c * n_k);
            let ci = (idx / n_k) % n_c;
            let mi = idx % n_k;
            run_cell_item(
                &experiments[ei],
                mi,
                c_values[ci],
                max_ages[ei],
                image_mb,
                true,
            )
        })
        .collect();

    // Index-aligned reduction: machine order inside each cell matches the
    // experiment list, aggregate absorption runs in ascending machine
    // order — exactly the serial loop's order.
    let cells: Vec<Vec<SweepCell>> = (0..n_c)
        .map(|ci| {
            (0..n_k)
                .map(|mi| {
                    let mut cell = SweepCell::default();
                    for ei in 0..experiments.len() {
                        let r = &results[ei * n_c * n_k + ci * n_k + mi];
                        cell.efficiency.push(r.efficiency());
                        cell.megabytes.push(r.megabytes);
                        cell.aggregate.absorb(r);
                    }
                    cell
                })
                .collect()
        })
        .collect();

    SweepGrid {
        c_values: c_values.to_vec(),
        models,
        cells,
        machines,
    }
}

fn sweep_serial(
    experiments: &[MachineExperiment],
    c_values: &[f64],
    image_mb: f64,
    warm: bool,
) -> SweepGrid {
    let models: Vec<ModelKind> = ModelKind::PAPER_SET.to_vec();
    let machines: Vec<MachineId> = experiments.iter().map(|e| e.machine).collect();

    let cells: Vec<Vec<SweepCell>> = c_values
        .iter()
        .map(|&c| {
            models
                .iter()
                .enumerate()
                .map(|(mi, _)| {
                    let mut cell = SweepCell::default();
                    for exp in experiments {
                        // Deliberately unhoisted: the reference pays the
                        // per-cell max-age rescan the flat sweep removed.
                        let r = run_cell_item(exp, mi, c, exp.max_age(), image_mb, warm);
                        cell.efficiency.push(r.efficiency());
                        cell.megabytes.push(r.megabytes);
                        cell.aggregate.absorb(&r);
                    }
                    cell
                })
                .collect()
        })
        .collect();

    SweepGrid {
        c_values: c_values.to_vec(),
        models,
        cells,
        machines,
    }
}

/// The naive serial sweep with the pre-optimization cost profile: nested
/// `C → model → machine` loops, a fresh max-age scan per cell, and a cold
/// (full-bracket) `T_opt` search at every grid point. This is the
/// baseline `sweep_bench` times [`sweep_paper_grid`] against; its cells
/// agree with the optimized sweep to the optimizer's floor precision
/// (~1e-8 relative — two different search paths cannot agree closer, see
/// `chs_numerics::optimize::spi_refine`).
pub fn sweep_paper_grid_reference(
    experiments: &[MachineExperiment],
    c_values: &[f64],
    image_mb: f64,
) -> SweepGrid {
    sweep_serial(experiments, c_values, image_mb, false)
}

/// The naive serial sweep using the same warm-started policy fill as
/// [`sweep_paper_grid`]. Because every per-cell computation is identical,
/// the flat fan-out must reproduce this **bitwise**; the differential
/// regression test pins that down cell-by-cell at 1e-9, isolating the
/// fan-out/reduction restructure from optimizer-precision effects.
pub fn sweep_paper_grid_serial(
    experiments: &[MachineExperiment],
    c_values: &[f64],
    image_mb: f64,
) -> SweepGrid {
    sweep_serial(experiments, c_values, image_mb, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chs_trace::synthetic::{generate_pool, PoolConfig};

    fn small_pool() -> MachinePool {
        generate_pool(&PoolConfig::small(12, 60, 17)).as_machine_pool()
    }

    #[test]
    fn prepare_fits_all_four_models() {
        let exps = prepare_experiments(&small_pool(), 25);
        assert!(!exps.is_empty());
        for e in &exps {
            assert_eq!(e.fits.len(), 4);
            assert_eq!(e.test_durations.len(), 35);
            for (kind, fit) in ModelKind::PAPER_SET.iter().zip(&e.fits) {
                assert_eq!(fit.kind(), *kind);
            }
        }
    }

    #[test]
    fn prepare_drops_short_traces() {
        let pool = generate_pool(&PoolConfig::small(4, 10, 3)).as_machine_pool();
        // train_len 25 > 10 observations: everything dropped.
        assert!(prepare_experiments(&pool, 25).is_empty());
    }

    #[test]
    fn prepare_report_accounts_for_every_machine() {
        let pool = small_pool();
        let prepared = prepare_experiments_reported(&pool, 25);
        let r = &prepared.report;
        assert_eq!(r.machines_total, pool.len());
        assert_eq!(r.machines_usable, prepared.experiments.len());
        assert_eq!(
            r.machines_usable + r.dropped_short_trace + r.dropped_fit_failure,
            r.machines_total
        );
        assert_eq!(r.fit_failures.len(), ModelKind::PAPER_SET.len());
        for (fc, kind) in r.fit_failures.iter().zip(ModelKind::PAPER_SET) {
            assert_eq!(fc.kind, kind);
        }

        // A pool of all-too-short traces lands entirely in the
        // short-trace bucket.
        let short = generate_pool(&PoolConfig::small(4, 10, 3)).as_machine_pool();
        let r = prepare_experiments_reported(&short, 25).report;
        assert_eq!(r.dropped_short_trace, 4);
        assert_eq!(r.machines_usable, 0);
        assert_eq!(r.dropped_fit_failure, 0);
    }

    #[test]
    fn resilient_prepare_never_drops_for_fit_failure() {
        let pool = small_pool();
        // Every (machine, family) fit injected to fail.
        let plan = FaultPlan {
            p_fit_failure: 1.0,
            ..FaultPlan::none()
        };
        let prepared = prepare_experiments_resilient(&pool, 25, &plan);
        let classic = prepare_experiments_reported(&pool, 25);
        // Same machines survive as the classic prepare keeps plus every
        // machine the classic prepare dropped for fit failure.
        assert_eq!(
            prepared.report.machines_usable,
            classic.report.machines_usable + classic.report.dropped_fit_failure
        );
        assert_eq!(prepared.report.dropped_fit_failure, 0);
        assert_eq!(
            prepared.report.fallback_exponential + prepared.report.fallback_fixed,
            prepared.report.machines_usable * ModelKind::PAPER_SET.len(),
            "every slot must land on a fallback tier"
        );
        for e in &prepared.experiments {
            assert_eq!(e.fallbacks.len(), ModelKind::PAPER_SET.len());
            assert!(e.fallbacks.iter().all(|f| *f != FitFallback::Native));
        }
        // The degraded pool still sweeps: every machine covered.
        let grid = sweep_paper_grid(&prepared.experiments, &[250.0], 500.0);
        assert_eq!(grid.machines.len(), prepared.experiments.len());
        for cell in &grid.cells[0] {
            assert_eq!(cell.efficiency.len(), prepared.experiments.len());
            for &eff in &cell.efficiency {
                assert!((0.0..=1.0).contains(&eff), "efficiency {eff}");
            }
        }
    }

    #[test]
    fn resilient_prepare_with_zero_plan_matches_classic() {
        let pool = small_pool();
        let resilient = prepare_experiments_resilient(&pool, 25, &FaultPlan::none());
        let classic = prepare_experiments_reported(&pool, 25);
        // With no injection and no natural failures the experiment lists
        // agree machine-for-machine and every slot is Native.
        assert_eq!(
            resilient.experiments.len(),
            classic.experiments.len() // small_pool has no natural failures
        );
        for (r, c) in resilient.experiments.iter().zip(&classic.experiments) {
            assert_eq!(r.machine, c.machine);
            assert_eq!(r.test_durations, c.test_durations);
            assert!(r.fallbacks.iter().all(|f| *f == FitFallback::Native));
            for (rf, cf) in r.fits.iter().zip(&c.fits) {
                assert_eq!(rf.kind(), cf.kind());
            }
        }
        assert_eq!(resilient.report.fallback_exponential, 0);
        assert_eq!(resilient.report.fallback_fixed, 0);
    }

    #[test]
    fn fixed_tier_slots_run_youngs_interval() {
        let pool = small_pool();
        let plan = FaultPlan {
            p_fit_failure: 1.0,
            ..FaultPlan::none()
        };
        let mut prepared = prepare_experiments_resilient(&pool, 25, &plan);
        // Force one slot all the way down to the Fixed tier and check the
        // sweep still produces sane metrics for it.
        prepared.experiments[0].fallbacks[0] = FitFallback::Fixed;
        let grid = sweep_paper_grid(&prepared.experiments[..1], &[100.0], 500.0);
        let eff = grid.cells[0][0].efficiency[0];
        assert!((0.0..=1.0).contains(&eff));
        assert!(grid.cells[0][0].aggregate.conservation_residual().abs() < 1e-3);
    }

    #[test]
    fn sweep_shapes_and_alignment() {
        let exps = prepare_experiments(&small_pool(), 25);
        let grid = sweep_paper_grid(&exps, &[100.0, 500.0], 500.0);
        assert_eq!(grid.c_values, vec![100.0, 500.0]);
        assert_eq!(grid.models.len(), 4);
        assert_eq!(grid.cells.len(), 2);
        for row in &grid.cells {
            assert_eq!(row.len(), 4);
            for cell in row {
                assert_eq!(cell.efficiency.len(), exps.len());
                assert_eq!(cell.megabytes.len(), exps.len());
            }
        }
        assert_eq!(grid.machines.len(), exps.len());
    }

    #[test]
    fn efficiency_decreases_with_checkpoint_cost() {
        let exps = prepare_experiments(&small_pool(), 25);
        let grid = sweep_paper_grid(&exps, &[50.0, 1_500.0], 500.0);
        for mi in 0..4 {
            let cheap = grid.mean_efficiency(0, mi);
            let dear = grid.mean_efficiency(1, mi);
            assert!(
                cheap > dear,
                "model {mi}: eff(C=50)={cheap} !> eff(C=1500)={dear}"
            );
        }
    }

    #[test]
    fn all_efficiencies_are_fractions() {
        let exps = prepare_experiments(&small_pool(), 25);
        let grid = sweep_paper_grid(&exps, &[250.0], 500.0);
        for cell in &grid.cells[0] {
            for &e in &cell.efficiency {
                assert!((0.0..=1.0).contains(&e), "efficiency {e}");
            }
            for &mb in &cell.megabytes {
                assert!(mb >= 0.0);
            }
            assert!(cell.aggregate.conservation_residual().abs() < 1e-3);
        }
    }
}
