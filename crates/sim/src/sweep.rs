//! Pool-wide parameter sweeps: the engine behind Figures 3–4 and
//! Tables 1 & 3.
//!
//! For every machine, fit all four paper models on the training prefix of
//! its trace; then for every checkpoint cost `C` in the grid and every
//! model, simulate the experimental remainder and record per-machine
//! efficiency and network load. Work is parallelized over machines with
//! rayon; per-machine results stay index-aligned so downstream paired
//! t-tests can compare models machine-by-machine.

use crate::engine::{simulate_trace, SimConfig};
use crate::metrics::SimResult;
use crate::policy::CachedPolicy;
use chs_dist::fit::fit_model;
use chs_dist::{FittedModel, ModelKind};
use chs_markov::CheckpointCosts;
use chs_trace::{MachineId, MachinePool};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One machine prepared for the sweep: its four fitted models plus the
/// held-out experimental durations.
#[derive(Debug, Clone)]
pub struct MachineExperiment {
    /// Which machine.
    pub machine: MachineId,
    /// Fitted models, in [`ModelKind::PAPER_SET`] order.
    pub fits: Vec<FittedModel>,
    /// The experimental (held-out) durations.
    pub test_durations: Vec<f64>,
}

/// Fit the paper's four models to every machine's training prefix.
///
/// Machines that cannot be split (too few observations) or whose data
/// defeats one of the estimators are dropped, mirroring the paper's
/// "chosen a sufficient number of times" filter.
pub fn prepare_experiments(pool: &MachinePool, train_len: usize) -> Vec<MachineExperiment> {
    pool.traces()
        .par_iter()
        .filter_map(|trace| {
            let (train, test) = trace.split(train_len).ok()?;
            if test.is_empty() {
                return None;
            }
            let mut fits = Vec::with_capacity(ModelKind::PAPER_SET.len());
            for kind in ModelKind::PAPER_SET {
                fits.push(fit_model(kind, &train).ok()?);
            }
            Some(MachineExperiment {
                machine: trace.machine,
                fits,
                test_durations: test,
            })
        })
        .collect()
}

/// The per-(C, model) cell of a sweep: per-machine metrics, index-aligned
/// with the experiment list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepCell {
    /// Efficiency per machine.
    pub efficiency: Vec<f64>,
    /// Network megabytes per machine.
    pub megabytes: Vec<f64>,
    /// Full accounting aggregated over the pool.
    pub aggregate: SimResult,
}

/// Results of a full grid sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepGrid {
    /// The checkpoint costs on the grid (seconds).
    pub c_values: Vec<f64>,
    /// The models, in [`ModelKind::PAPER_SET`] order.
    pub models: Vec<ModelKind>,
    /// `cells[c_index][model_index]`.
    pub cells: Vec<Vec<SweepCell>>,
    /// Machines included (same order as each cell's vectors).
    pub machines: Vec<MachineId>,
}

impl SweepGrid {
    /// Mean efficiency for `(c_index, model_index)`.
    pub fn mean_efficiency(&self, c_index: usize, model_index: usize) -> f64 {
        mean(&self.cells[c_index][model_index].efficiency)
    }

    /// Mean megabytes for `(c_index, model_index)`.
    pub fn mean_megabytes(&self, c_index: usize, model_index: usize) -> f64 {
        mean(&self.cells[c_index][model_index].megabytes)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The checkpoint-cost grid of the paper's Figures 3–4 / Tables 1 & 3.
pub const PAPER_C_GRID: [f64; 10] = [
    50.0, 100.0, 200.0, 250.0, 400.0, 500.0, 750.0, 1_000.0, 1_250.0, 1_500.0,
];

/// Run the full sweep: for every C and model, simulate every machine's
/// experimental trace under the model's cached `T_opt` policy.
pub fn sweep_paper_grid(
    experiments: &[MachineExperiment],
    c_values: &[f64],
    image_mb: f64,
) -> SweepGrid {
    let models: Vec<ModelKind> = ModelKind::PAPER_SET.to_vec();
    let machines: Vec<MachineId> = experiments.iter().map(|e| e.machine).collect();

    let cells: Vec<Vec<SweepCell>> = c_values
        .par_iter()
        .map(|&c| {
            models
                .iter()
                .enumerate()
                .map(|(mi, _)| {
                    let mut cell = SweepCell::default();
                    for exp in experiments {
                        let max_age = exp.test_durations.iter().cloned().fold(0.0f64, f64::max);
                        let policy = CachedPolicy::new(
                            exp.fits[mi].clone(),
                            CheckpointCosts::symmetric(c),
                            max_age,
                        );
                        let mut config = SimConfig::paper(c);
                        config.image_mb = image_mb;
                        let r = simulate_trace(&exp.test_durations, &policy, &config)
                            .expect("validated durations");
                        cell.efficiency.push(r.efficiency());
                        cell.megabytes.push(r.megabytes);
                        cell.aggregate.absorb(&r);
                    }
                    cell
                })
                .collect()
        })
        .collect();

    SweepGrid {
        c_values: c_values.to_vec(),
        models,
        cells,
        machines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chs_trace::synthetic::{generate_pool, PoolConfig};

    fn small_pool() -> MachinePool {
        generate_pool(&PoolConfig::small(12, 60, 17)).as_machine_pool()
    }

    #[test]
    fn prepare_fits_all_four_models() {
        let exps = prepare_experiments(&small_pool(), 25);
        assert!(!exps.is_empty());
        for e in &exps {
            assert_eq!(e.fits.len(), 4);
            assert_eq!(e.test_durations.len(), 35);
            for (kind, fit) in ModelKind::PAPER_SET.iter().zip(&e.fits) {
                assert_eq!(fit.kind(), *kind);
            }
        }
    }

    #[test]
    fn prepare_drops_short_traces() {
        let pool = generate_pool(&PoolConfig::small(4, 10, 3)).as_machine_pool();
        // train_len 25 > 10 observations: everything dropped.
        assert!(prepare_experiments(&pool, 25).is_empty());
    }

    #[test]
    fn sweep_shapes_and_alignment() {
        let exps = prepare_experiments(&small_pool(), 25);
        let grid = sweep_paper_grid(&exps, &[100.0, 500.0], 500.0);
        assert_eq!(grid.c_values, vec![100.0, 500.0]);
        assert_eq!(grid.models.len(), 4);
        assert_eq!(grid.cells.len(), 2);
        for row in &grid.cells {
            assert_eq!(row.len(), 4);
            for cell in row {
                assert_eq!(cell.efficiency.len(), exps.len());
                assert_eq!(cell.megabytes.len(), exps.len());
            }
        }
        assert_eq!(grid.machines.len(), exps.len());
    }

    #[test]
    fn efficiency_decreases_with_checkpoint_cost() {
        let exps = prepare_experiments(&small_pool(), 25);
        let grid = sweep_paper_grid(&exps, &[50.0, 1_500.0], 500.0);
        for mi in 0..4 {
            let cheap = grid.mean_efficiency(0, mi);
            let dear = grid.mean_efficiency(1, mi);
            assert!(
                cheap > dear,
                "model {mi}: eff(C=50)={cheap} !> eff(C=1500)={dear}"
            );
        }
    }

    #[test]
    fn all_efficiencies_are_fractions() {
        let exps = prepare_experiments(&small_pool(), 25);
        let grid = sweep_paper_grid(&exps, &[250.0], 500.0);
        for cell in &grid.cells[0] {
            for &e in &cell.efficiency {
                assert!((0.0..=1.0).contains(&e), "efficiency {e}");
            }
            for &mb in &cell.megabytes {
                assert!(mb >= 0.0);
            }
            assert!(cell.aggregate.conservation_residual().abs() < 1e-3);
        }
    }
}
