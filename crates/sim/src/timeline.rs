//! Timeline recording: a per-segment, per-interval account of a
//! simulated job, for debugging schedules and driving visualizations.
//!
//! [`simulate_with_timeline`] runs the same engine as
//! [`crate::simulate_trace`] but additionally records what happened in
//! every availability segment; its aggregate totals are asserted (in
//! tests) to match the plain simulator exactly, so the timeline is a
//! faithful replay rather than a second implementation that can drift.

use crate::engine::{simulate_trace, SimConfig};
use crate::metrics::SimResult;
use crate::policy::SchedulePolicy;
use crate::Result;
use serde::{Deserialize, Serialize};

/// How one planned work interval ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalOutcome {
    /// Work and checkpoint both finished; work credited.
    Committed,
    /// Evicted during the work phase.
    FailedInWork,
    /// Evicted during the checkpoint transfer.
    FailedInCheckpoint,
}

/// One planned interval within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Machine age when the interval's work began.
    pub start_age: f64,
    /// The planned work duration (`T` from the policy).
    pub planned_work: f64,
    /// How it ended.
    pub outcome: IntervalOutcome,
}

/// Everything that happened during one availability segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// Segment length, seconds.
    pub duration: f64,
    /// Whether the initial recovery completed.
    pub recovered: bool,
    /// The intervals attempted, in order.
    pub intervals: Vec<IntervalRecord>,
}

impl SegmentRecord {
    /// Work seconds committed in this segment.
    pub fn useful(&self) -> f64 {
        self.intervals
            .iter()
            .filter(|i| i.outcome == IntervalOutcome::Committed)
            .map(|i| i.planned_work)
            .sum()
    }
}

/// The full replay of one simulated job.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// One record per availability segment, in trace order.
    pub segments: Vec<SegmentRecord>,
}

impl Timeline {
    /// Total committed work across the run.
    pub fn useful_seconds(&self) -> f64 {
        self.segments.iter().map(SegmentRecord::useful).sum()
    }

    /// Committed checkpoints across the run.
    pub fn checkpoints_committed(&self) -> u64 {
        self.segments
            .iter()
            .flat_map(|s| &s.intervals)
            .filter(|i| i.outcome == IntervalOutcome::Committed)
            .count() as u64
    }

    /// Number of segments whose recovery was cut off.
    pub fn recovery_failures(&self) -> u64 {
        self.segments.iter().filter(|s| !s.recovered).count() as u64
    }
}

/// Run the simulation and record the timeline. Returns the same
/// [`SimResult`] as [`simulate_trace`] plus the replay.
pub fn simulate_with_timeline(
    durations: &[f64],
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> Result<(SimResult, Timeline)> {
    // Run the real engine for the authoritative totals…
    let result = simulate_trace(durations, policy, config)?;
    // …and replay the identical deterministic logic recording structure.
    let mut timeline = Timeline::default();
    for &segment in durations {
        timeline
            .segments
            .push(replay_segment(segment, policy, config));
    }
    debug_assert!(
        (timeline.useful_seconds() - result.useful_seconds).abs()
            < 1e-6 * result.useful_seconds.max(1.0),
        "timeline diverged from engine"
    );
    Ok((result, timeline))
}

fn replay_segment(a: f64, policy: &dyn SchedulePolicy, config: &SimConfig) -> SegmentRecord {
    let c = config.checkpoint_cost;
    let rec = config.recovery_cost;
    if a < rec {
        return SegmentRecord {
            duration: a,
            recovered: false,
            intervals: Vec::new(),
        };
    }
    let mut intervals = Vec::new();
    let mut age = rec;
    loop {
        let t = policy.next_interval(age).max(1e-6);
        if age + t >= a {
            intervals.push(IntervalRecord {
                start_age: age,
                planned_work: t,
                outcome: IntervalOutcome::FailedInWork,
            });
            break;
        }
        if age + t + c > a {
            intervals.push(IntervalRecord {
                start_age: age,
                planned_work: t,
                outcome: IntervalOutcome::FailedInCheckpoint,
            });
            break;
        }
        intervals.push(IntervalRecord {
            start_age: age,
            planned_work: t,
            outcome: IntervalOutcome::Committed,
        });
        age += t + c;
        if age >= a {
            break;
        }
    }
    SegmentRecord {
        duration: a,
        recovered: true,
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedIntervalPolicy;

    fn run(durations: &[f64], t: f64, c: f64) -> (SimResult, Timeline) {
        let policy = FixedIntervalPolicy { interval: t };
        simulate_with_timeline(durations, &policy, &SimConfig::paper(c)).unwrap()
    }

    #[test]
    fn timeline_totals_match_engine() {
        let durations: Vec<f64> = (1..300)
            .map(|i| (i as f64 * 173.3) % 9_000.0 + 5.0)
            .collect();
        let (result, timeline) = run(&durations, 700.0, 120.0);
        assert!(
            (timeline.useful_seconds() - result.useful_seconds).abs() < 1e-6,
            "useful: {} vs {}",
            timeline.useful_seconds(),
            result.useful_seconds
        );
        assert_eq!(
            timeline.checkpoints_committed(),
            result.checkpoints_committed
        );
        assert_eq!(timeline.segments.len(), durations.len());
    }

    #[test]
    fn hand_checked_segment_structure() {
        // Segment 1000, R = C = 50, T = 200: three committed intervals,
        // then a failure in work (see the engine's hand-computed test).
        let (_, timeline) = run(&[1_000.0], 200.0, 50.0);
        let seg = &timeline.segments[0];
        assert!(seg.recovered);
        assert_eq!(seg.intervals.len(), 4);
        let outcomes: Vec<IntervalOutcome> = seg.intervals.iter().map(|i| i.outcome).collect();
        assert_eq!(
            outcomes,
            vec![
                IntervalOutcome::Committed,
                IntervalOutcome::Committed,
                IntervalOutcome::Committed,
                IntervalOutcome::FailedInWork
            ]
        );
        assert_eq!(seg.intervals[0].start_age, 50.0);
        assert_eq!(seg.intervals[1].start_age, 300.0);
    }

    #[test]
    fn failed_recovery_has_no_intervals() {
        let (_, timeline) = run(&[20.0], 200.0, 50.0);
        assert!(!timeline.segments[0].recovered);
        assert!(timeline.segments[0].intervals.is_empty());
        assert_eq!(timeline.recovery_failures(), 1);
    }

    #[test]
    fn checkpoint_failure_recorded() {
        // Segment 280, R = C = 50, T = 200: work ends 250, checkpoint cut.
        let (_, timeline) = run(&[280.0], 200.0, 50.0);
        let outcomes: Vec<IntervalOutcome> = timeline.segments[0]
            .intervals
            .iter()
            .map(|i| i.outcome)
            .collect();
        assert_eq!(outcomes, vec![IntervalOutcome::FailedInCheckpoint]);
    }

    #[test]
    fn serde_roundtrip() {
        let (_, timeline) = run(&[1_000.0, 280.0, 20.0], 200.0, 50.0);
        let json = serde_json::to_string(&timeline).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(timeline, back);
    }
}
