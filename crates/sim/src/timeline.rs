//! Timeline recording: a per-segment, per-interval account of a
//! simulated job, for debugging schedules and driving visualizations.
//!
//! [`simulate_with_timeline`] attaches a [`TimelineBuilder`] observer to
//! the **single** engine pass of [`crate::simulate_trace`]: the timeline
//! is assembled from the same cycle events that produce the totals, so
//! it cannot drift from the engine — the old second "replay" simulation
//! is gone. Because the builder folds in engine event order, the
//! timeline's aggregates reproduce the engine's accumulators bitwise
//! (asserted in tests, not just to a tolerance).

use crate::engine::{simulate_trace_observed, SimConfig};
use crate::metrics::SimResult;
use crate::policy::SchedulePolicy;
use crate::Result;
use chs_cycle::{CycleObserver, TransferDirection};
use serde::{Deserialize, Serialize};

/// How one planned work interval ended — shared cycle vocabulary.
pub use chs_cycle::IntervalOutcome;

/// One planned interval within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Machine age when the interval's work began.
    pub start_age: f64,
    /// The planned work duration (`T` from the policy).
    pub planned_work: f64,
    /// How it ended.
    pub outcome: IntervalOutcome,
    /// Megabytes its checkpoint transfer moved: the full image when
    /// committed, the partial bytes when cut off, 0 when eviction struck
    /// before the checkpoint began.
    pub checkpoint_megabytes: f64,
}

/// Everything that happened during one availability segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// Segment length, seconds.
    pub duration: f64,
    /// Whether the initial recovery completed.
    pub recovered: bool,
    /// Seconds the recovery transfer ran — the full recovery cost when it
    /// completed, the partial time when eviction cut it off (previously
    /// lost on mid-recovery evictions).
    pub recovery_seconds: f64,
    /// Megabytes the recovery transfer moved (partial when cut off; 0
    /// when the configuration excludes recovery bytes).
    pub recovery_megabytes: f64,
    /// The intervals attempted, in order.
    pub intervals: Vec<IntervalRecord>,
}

impl SegmentRecord {
    /// Work seconds committed in this segment.
    pub fn useful(&self) -> f64 {
        self.intervals
            .iter()
            .filter(|i| i.outcome == IntervalOutcome::Committed)
            .map(|i| i.planned_work)
            .sum()
    }
}

/// The full replay of one simulated job.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// One record per availability segment, in trace order.
    pub segments: Vec<SegmentRecord>,
}

impl Timeline {
    /// Total committed work across the run.
    ///
    /// Folded flat in chronological order — the same accumulation the
    /// engine performs — so this equals the engine's `useful_seconds`
    /// bitwise, not merely within a tolerance.
    pub fn useful_seconds(&self) -> f64 {
        self.segments
            .iter()
            .flat_map(|s| &s.intervals)
            .filter(|i| i.outcome == IntervalOutcome::Committed)
            .fold(0.0, |acc, i| acc + i.planned_work)
    }

    /// Total megabytes across the run (recoveries and checkpoints, full
    /// and partial), folded in engine event order for bitwise agreement
    /// with the engine's `megabytes` accumulator.
    pub fn megabytes(&self) -> f64 {
        self.segments.iter().fold(0.0, |acc, s| {
            s.intervals
                .iter()
                .fold(acc + s.recovery_megabytes, |acc, i| {
                    acc + i.checkpoint_megabytes
                })
        })
    }

    /// Committed checkpoints across the run.
    pub fn checkpoints_committed(&self) -> u64 {
        self.segments
            .iter()
            .flat_map(|s| &s.intervals)
            .filter(|i| i.outcome == IntervalOutcome::Committed)
            .count() as u64
    }

    /// Number of segments whose recovery was cut off.
    pub fn recovery_failures(&self) -> u64 {
        self.segments.iter().filter(|s| !s.recovered).count() as u64
    }
}

/// A [`CycleObserver`] that assembles a [`Timeline`] from the engine's
/// event stream.
#[derive(Debug, Default)]
pub struct TimelineBuilder {
    timeline: Timeline,
}

impl TimelineBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The assembled timeline.
    pub fn finish(self) -> Timeline {
        self.timeline
    }

    fn segment(&mut self) -> &mut SegmentRecord {
        self.timeline.segments.last_mut().expect("placed segment")
    }
}

impl CycleObserver for TimelineBuilder {
    fn on_placed(&mut self, expected_duration: f64) {
        self.timeline.segments.push(SegmentRecord {
            duration: expected_duration,
            recovered: false,
            recovery_seconds: 0.0,
            recovery_megabytes: 0.0,
            intervals: Vec::new(),
        });
    }

    fn on_transfer_completed(
        &mut self,
        _at: f64,
        direction: TransferDirection,
        elapsed: f64,
        megabytes: f64,
    ) {
        match direction {
            TransferDirection::Inbound => {
                let seg = self.segment();
                seg.recovered = true;
                seg.recovery_seconds = elapsed;
                seg.recovery_megabytes = megabytes;
            }
            TransferDirection::Outbound => {
                let interval = self.segment().intervals.last_mut().expect("planned");
                interval.outcome = IntervalOutcome::Committed;
                interval.checkpoint_megabytes = megabytes;
            }
        }
    }

    fn on_transfer_interrupted(
        &mut self,
        _at: f64,
        direction: TransferDirection,
        elapsed: f64,
        megabytes: f64,
    ) {
        match direction {
            TransferDirection::Inbound => {
                let seg = self.segment();
                seg.recovery_seconds = elapsed;
                seg.recovery_megabytes = megabytes;
            }
            TransferDirection::Outbound => {
                let interval = self.segment().intervals.last_mut().expect("planned");
                interval.outcome = IntervalOutcome::FailedInCheckpoint;
                interval.checkpoint_megabytes = megabytes;
            }
        }
    }

    fn on_interval_planned(&mut self, at: f64, planned_work: f64) {
        self.segment().intervals.push(IntervalRecord {
            start_age: at,
            planned_work,
            // Provisional: promoted by the checkpoint transfer's
            // completion/interruption events; stays FailedInWork when
            // eviction strikes before the checkpoint starts.
            outcome: IntervalOutcome::FailedInWork,
            checkpoint_megabytes: 0.0,
        });
    }
}

/// Run the simulation once, with timeline recording attached. Returns
/// the same [`SimResult`] as [`crate::simulate_trace`] (bit-for-bit —
/// it is the same engine pass) plus the replay.
pub fn simulate_with_timeline(
    durations: &[f64],
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> Result<(SimResult, Timeline)> {
    let mut builder = TimelineBuilder::new();
    let result = simulate_trace_observed(durations, policy, config, &mut builder)?;
    Ok((result, builder.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_trace;
    use crate::policy::FixedIntervalPolicy;

    fn run(durations: &[f64], t: f64, c: f64) -> (SimResult, Timeline) {
        let policy = FixedIntervalPolicy { interval: t };
        simulate_with_timeline(durations, &policy, &SimConfig::paper(c)).unwrap()
    }

    #[test]
    fn timeline_totals_match_engine_bitwise() {
        let durations: Vec<f64> = (1..300)
            .map(|i| (i as f64 * 173.3) % 9_000.0 + 5.0)
            .collect();
        let (result, timeline) = run(&durations, 700.0, 120.0);
        // Same engine pass + same fold order → exact equality.
        assert_eq!(
            timeline.useful_seconds().to_bits(),
            result.useful_seconds.to_bits(),
            "useful: {} vs {}",
            timeline.useful_seconds(),
            result.useful_seconds
        );
        assert_eq!(
            timeline.megabytes().to_bits(),
            result.megabytes.to_bits(),
            "megabytes: {} vs {}",
            timeline.megabytes(),
            result.megabytes
        );
        assert_eq!(
            timeline.checkpoints_committed(),
            result.checkpoints_committed
        );
        assert_eq!(timeline.segments.len(), durations.len());
    }

    #[test]
    fn observed_run_returns_plain_engine_result() {
        // The timeline variant is the same single engine pass, so its
        // SimResult equals simulate_trace's exactly.
        let durations: Vec<f64> = (1..200)
            .map(|i| (i as f64 * 97.3) % 5_000.0 + 1.0)
            .collect();
        let policy = FixedIntervalPolicy { interval: 450.0 };
        let config = SimConfig::paper(75.0);
        let plain = simulate_trace(&durations, &policy, &config).unwrap();
        let (observed, _) = simulate_with_timeline(&durations, &policy, &config).unwrap();
        assert_eq!(plain, observed);
    }

    #[test]
    fn hand_checked_segment_structure() {
        // Segment 1000, R = C = 50, T = 200: three committed intervals,
        // then a failure in work (see the engine's hand-computed test).
        let (_, timeline) = run(&[1_000.0], 200.0, 50.0);
        let seg = &timeline.segments[0];
        assert!(seg.recovered);
        assert_eq!(seg.recovery_seconds, 50.0);
        assert_eq!(seg.recovery_megabytes, 500.0);
        assert_eq!(seg.intervals.len(), 4);
        let outcomes: Vec<IntervalOutcome> = seg.intervals.iter().map(|i| i.outcome).collect();
        assert_eq!(
            outcomes,
            vec![
                IntervalOutcome::Committed,
                IntervalOutcome::Committed,
                IntervalOutcome::Committed,
                IntervalOutcome::FailedInWork
            ]
        );
        assert_eq!(seg.intervals[0].start_age, 50.0);
        assert_eq!(seg.intervals[1].start_age, 300.0);
        assert_eq!(seg.intervals[0].checkpoint_megabytes, 500.0);
        assert_eq!(seg.intervals[3].checkpoint_megabytes, 0.0);
    }

    #[test]
    fn failed_recovery_keeps_partial_accounting() {
        let (_, timeline) = run(&[20.0], 200.0, 50.0);
        let seg = &timeline.segments[0];
        assert!(!seg.recovered);
        assert!(seg.intervals.is_empty());
        assert_eq!(timeline.recovery_failures(), 1);
        // The partial recovery is no longer dropped: 20 of 50 seconds,
        // 200 of 500 MB.
        assert_eq!(seg.recovery_seconds, 20.0);
        assert!((seg.recovery_megabytes - 200.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_failure_recorded_with_partial_bytes() {
        // Segment 280, R = C = 50, T = 200: work ends 250, checkpoint cut
        // at 280 with 30/50 of the image moved.
        let (_, timeline) = run(&[280.0], 200.0, 50.0);
        let intervals = &timeline.segments[0].intervals;
        let outcomes: Vec<IntervalOutcome> = intervals.iter().map(|i| i.outcome).collect();
        assert_eq!(outcomes, vec![IntervalOutcome::FailedInCheckpoint]);
        assert!((intervals[0].checkpoint_megabytes - 300.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let (_, timeline) = run(&[1_000.0, 280.0, 20.0], 200.0, 50.0);
        let json = serde_json::to_string(&timeline).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(timeline, back);
    }
}
