//! Differential test pinning the chs-cycle port of the engine against a
//! **frozen copy of the pre-refactor segment loop**. The refactor's
//! contract is that moving the cycle arithmetic into `chs_cycle` changed
//! no operation and no operation order, so every accounting field must
//! match **bitwise** — `to_bits()` equality, not tolerances — across
//! random traces and both stateless (Fixed) and age-dependent (Cached)
//! policies.

use chs_markov::CheckpointCosts;
use chs_sim::{simulate_trace, CachedPolicy, FixedIntervalPolicy, SchedulePolicy, SimConfig};
use proptest::prelude::*;

/// The engine's accounting exactly as it existed before the extraction.
#[derive(Debug, Default, PartialEq)]
struct FrozenResult {
    useful_seconds: f64,
    lost_seconds: f64,
    recovery_seconds: f64,
    checkpoint_seconds: f64,
    total_seconds: f64,
    megabytes: f64,
    checkpoints_committed: u64,
    checkpoints_attempted: u64,
    recoveries: u64,
    failures: u64,
}

/// Verbatim copy of the pre-refactor `simulate_segment` loop
/// (crates/sim/src/engine.rs before chs-cycle), including its inline
/// `.max(1e-6)` interval clamp. Do not "improve" this function — its
/// whole value is that it is frozen.
fn frozen_segment(a: f64, policy: &dyn SchedulePolicy, config: &SimConfig, r: &mut FrozenResult) {
    let c = config.checkpoint_cost;
    let rec = config.recovery_cost;
    let image = config.image_mb;
    r.total_seconds += a;
    r.recoveries += 1;

    if a < rec {
        r.recovery_seconds += a;
        if config.count_recovery_bytes && rec > 0.0 {
            r.megabytes += image * (a / rec);
        }
        r.failures += 1;
        return;
    }
    r.recovery_seconds += rec;
    if config.count_recovery_bytes {
        r.megabytes += image;
    }
    let mut age = rec;

    loop {
        let t = policy.next_interval(age).max(1e-6);
        if age + t >= a {
            r.lost_seconds += a - age;
            r.failures += 1;
            return;
        }
        if age + t + c > a {
            let ckpt_elapsed = a - (age + t);
            r.lost_seconds += t + ckpt_elapsed;
            r.checkpoints_attempted += 1;
            if c > 0.0 {
                r.megabytes += image * (ckpt_elapsed / c);
            }
            r.failures += 1;
            return;
        }
        r.useful_seconds += t;
        r.checkpoint_seconds += c;
        r.megabytes += image;
        r.checkpoints_attempted += 1;
        r.checkpoints_committed += 1;
        age += t + c;
        if age >= a {
            r.failures += 1;
            return;
        }
    }
}

fn frozen_trace(
    durations: &[f64],
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> FrozenResult {
    let mut r = FrozenResult::default();
    for &segment in durations {
        frozen_segment(segment, policy, config, &mut r);
    }
    r
}

/// Deterministic pseudo-random durations, log-uniform-ish in 1 s..~28 h.
fn durations(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            (10f64).powf(u * 5.0)
        })
        .collect()
}

#[track_caller]
fn assert_bitwise(ported: &chs_sim::SimResult, frozen: &FrozenResult) {
    let pairs = [
        (
            "useful_seconds",
            ported.useful_seconds,
            frozen.useful_seconds,
        ),
        ("lost_seconds", ported.lost_seconds, frozen.lost_seconds),
        (
            "recovery_seconds",
            ported.recovery_seconds,
            frozen.recovery_seconds,
        ),
        (
            "checkpoint_seconds",
            ported.checkpoint_seconds,
            frozen.checkpoint_seconds,
        ),
        ("total_seconds", ported.total_seconds, frozen.total_seconds),
        ("megabytes", ported.megabytes, frozen.megabytes),
    ];
    for (name, p, f) in pairs {
        assert_eq!(
            p.to_bits(),
            f.to_bits(),
            "{name}: ported {p:e} != frozen {f:e}"
        );
    }
    assert_eq!(ported.checkpoints_committed, frozen.checkpoints_committed);
    assert_eq!(ported.checkpoints_attempted, frozen.checkpoints_attempted);
    assert_eq!(ported.recoveries, frozen.recoveries);
    assert_eq!(ported.failures, frozen.failures);
}

fn weibull_cached(seed: u64, cost: f64, max_age: f64) -> Option<CachedPolicy> {
    use chs_dist::fit::fit_model;
    use chs_dist::ModelKind;
    let train = durations(25, seed ^ 0xD1FF);
    fit_model(ModelKind::Weibull, &train)
        .ok()
        .map(|fit| CachedPolicy::new(fit, CheckpointCosts::symmetric(cost), max_age))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed-interval policy: the ported engine is bitwise identical to
    /// the frozen pre-refactor loop.
    #[test]
    fn fixed_policy_bitwise_identical(
        seed in 0u64..100_000,
        c in 0.0f64..1_000.0,
        t in 60.0f64..20_000.0,
        count_recovery in 0usize..2,
    ) {
        let ds = durations(250, seed);
        let policy = FixedIntervalPolicy { interval: t };
        let mut config = SimConfig::paper(c);
        config.count_recovery_bytes = count_recovery == 1;
        let ported = simulate_trace(&ds, &policy, &config).unwrap();
        let frozen = frozen_trace(&ds, &policy, &config);
        assert_bitwise(&ported, &frozen);
    }

    /// Cached age-dependent policy (the paper's T_opt path): still
    /// bitwise identical — the port must not have changed when or with
    /// what age the policy is consulted.
    #[test]
    fn cached_policy_bitwise_identical(seed in 0u64..10_000, c in 10.0f64..500.0) {
        let ds = durations(150, seed);
        let max_age = ds.iter().cloned().fold(0.0f64, f64::max);
        if let Some(policy) = weibull_cached(seed, c, max_age) {
            let config = SimConfig::paper(c);
            let ported = simulate_trace(&ds, &policy, &config).unwrap();
            let frozen = frozen_trace(&ds, &policy, &config);
            assert_bitwise(&ported, &frozen);
        }
    }
}

/// Degenerate-but-valid corners the proptest ranges do not hit. The
/// clamp case uses millisecond-scale segments so the 1e-6 s floor is
/// exercised without running billions of cycles.
#[test]
fn edge_cases_bitwise_identical() {
    let ds = durations(300, 7);
    let tiny: Vec<f64> = ds.iter().map(|d| d * 1e-5).collect();
    for (durations, t, c, rec) in [
        (&tiny, 1e-9, 0.0, 0.0),  // clamp engaged every interval
        (&ds, 5.0, 0.0, 50.0),    // zero checkpoint cost, nonzero recovery
        (&ds, 1e6, 300.0, 300.0), // interval longer than every segment
    ] {
        let policy = FixedIntervalPolicy { interval: t };
        let mut config = SimConfig::paper(c);
        config.recovery_cost = rec;
        let ported = simulate_trace(durations, &policy, &config).unwrap();
        let frozen = frozen_trace(durations, &policy, &config);
        assert_bitwise(&ported, &frozen);
    }
}
