//! The prepare-phase fit fan-out must be bitwise deterministic across
//! rayon pool sizes: each (machine × model) fit is an independent pure
//! computation and the reduction is index-aligned, so a 1-thread pool
//! and an N-thread pool must produce identical fitted parameters and an
//! identical drop report.

use chs_sim::prepare_experiments_reported;
use chs_trace::synthetic::{generate_pool, PoolConfig};
use rayon::ThreadPoolBuilder;

/// Serialize everything thread-count-sensitive about a prepared
/// experiment set. `serde_json` prints `f64`s via the shortest
/// round-trippable decimal, so equal strings ⇒ bitwise-equal parameters.
fn fingerprint(train_len: usize) -> (String, String) {
    let pool = generate_pool(&PoolConfig::small(16, 60, 9)).as_machine_pool();
    let prepared = prepare_experiments_reported(&pool, train_len);
    let fits: Vec<Vec<&chs_dist::FittedModel>> = prepared
        .experiments
        .iter()
        .map(|e| e.fits.iter().map(|f| &**f).collect())
        .collect();
    (
        serde_json::to_string(&fits).expect("fits serialize"),
        serde_json::to_string(&prepared.report).expect("report serializes"),
    )
}

#[test]
fn prepare_is_bitwise_identical_across_thread_counts() {
    let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let wide = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    for train_len in [25usize, 40] {
        let (fits_1, report_1) = single.install(|| fingerprint(train_len));
        let (fits_n, report_n) = wide.install(|| fingerprint(train_len));
        assert_eq!(
            fits_1, fits_n,
            "fitted parameters diverged between 1-thread and 4-thread pools"
        );
        assert_eq!(report_1, report_n, "prepare report diverged across pools");
    }
}

#[test]
fn prepare_matches_ambient_pool() {
    // The default (ambient) pool must agree with an explicit pool too.
    let (fits_ambient, report_ambient) = fingerprint(25);
    let wide = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let (fits_n, report_n) = wide.install(|| fingerprint(25));
    assert_eq!(fits_ambient, fits_n);
    assert_eq!(report_ambient, report_n);
}

/// Frozen pre-refactor fit path: the serial per-machine loop the batch
/// prepare ran before it was routed through `chs_sched::ingest`. The
/// prepared fits must still reproduce this bitwise — the ingest
/// refactor is a transport change, not a numeric one.
#[test]
fn prepare_matches_frozen_serial_fit_path() {
    use chs_dist::fit::fit_model;
    use chs_dist::ModelKind;

    let train_len = 25usize;
    let pool = generate_pool(&PoolConfig::small(16, 60, 9)).as_machine_pool();
    let prepared = prepare_experiments_reported(&pool, train_len);

    // Frozen path: split serially, fit each surviving machine's four
    // families in PAPER_SET order with direct fit_model calls.
    let mut frozen: Vec<Vec<chs_dist::FittedModel>> = Vec::new();
    for trace in pool.traces() {
        let Ok((train, test)) = trace.split(train_len) else {
            continue;
        };
        if test.is_empty() {
            continue;
        }
        let fits: Vec<_> = ModelKind::PAPER_SET
            .iter()
            .map(|&k| fit_model(k, &train))
            .collect();
        if fits.iter().all(Result::is_ok) {
            frozen.push(fits.into_iter().map(Result::unwrap).collect());
        }
    }

    assert_eq!(prepared.experiments.len(), frozen.len());
    for (exp, frozen_fits) in prepared.experiments.iter().zip(&frozen) {
        for (fit, frozen_fit) in exp.fits.iter().zip(frozen_fits) {
            assert_eq!(
                serde_json::to_string(&**fit).unwrap(),
                serde_json::to_string(frozen_fit).unwrap(),
                "machine {:?}: ingest-routed fit diverged from the frozen serial path",
                exp.machine
            );
        }
    }
}
