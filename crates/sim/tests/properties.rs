//! Property-based tests for the trace simulator.

use chs_markov::CheckpointCosts;
use chs_sim::{simulate_trace, CachedPolicy, FixedIntervalPolicy, SimConfig};
use proptest::prelude::*;

/// Deterministic pseudo-random durations in a plausible availability
/// range, parameterized by a seed so proptest explores many traces.
fn durations(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // 1 s .. ~28 h, log-uniform-ish.
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            (10f64).powf(u * 5.0)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Time conservation is exact for arbitrary traces and policies.
    #[test]
    fn conservation(seed in 0u64..10_000, c in 0.0f64..1_000.0, t in 1.0f64..20_000.0) {
        let ds = durations(200, seed);
        let policy = FixedIntervalPolicy { interval: t };
        let r = simulate_trace(&ds, &policy, &SimConfig::paper(c)).unwrap();
        prop_assert!(r.conservation_residual().abs() < 1e-6 * r.total_seconds.max(1.0));
        prop_assert!((r.total_seconds - ds.iter().sum::<f64>()).abs() < 1e-6);
    }

    /// Efficiency and megabytes are always non-negative; efficiency ≤ 1.
    #[test]
    fn metric_bounds(seed in 0u64..10_000, c in 1.0f64..2_000.0, t in 1.0f64..50_000.0) {
        let ds = durations(120, seed);
        let policy = FixedIntervalPolicy { interval: t };
        let r = simulate_trace(&ds, &policy, &SimConfig::paper(c)).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.efficiency()));
        prop_assert!(r.megabytes >= 0.0);
        prop_assert!(r.checkpoints_committed <= r.checkpoints_attempted);
        prop_assert!(r.failures as usize == 120);
        prop_assert!(r.recoveries as usize == 120);
    }

    /// Counting recovery bytes can only increase megabytes, and by at most
    /// one image per segment.
    #[test]
    fn recovery_bytes_accounting(seed in 0u64..5_000, c in 10.0f64..500.0) {
        let ds = durations(80, seed);
        let policy = FixedIntervalPolicy { interval: 900.0 };
        let mut with = SimConfig::paper(c);
        with.count_recovery_bytes = true;
        let mut without = with;
        without.count_recovery_bytes = false;
        let rw = simulate_trace(&ds, &policy, &with).unwrap();
        let ro = simulate_trace(&ds, &policy, &without).unwrap();
        let delta = rw.megabytes - ro.megabytes;
        prop_assert!(delta >= 0.0);
        prop_assert!(delta <= 500.0 * ds.len() as f64 + 1e-6);
        // Everything else identical.
        prop_assert!((rw.useful_seconds - ro.useful_seconds).abs() < 1e-9);
    }

    /// Scaling the checkpoint image scales network bytes exactly
    /// linearly and changes nothing else.
    #[test]
    fn image_size_linearity(seed in 0u64..5_000, factor in 0.1f64..4.0) {
        let ds = durations(100, seed);
        let policy = FixedIntervalPolicy { interval: 1_200.0 };
        let base = SimConfig::paper(110.0);
        let mut scaled = base;
        scaled.image_mb = base.image_mb * factor;
        let rb = simulate_trace(&ds, &policy, &base).unwrap();
        let rs = simulate_trace(&ds, &policy, &scaled).unwrap();
        prop_assert!((rs.megabytes - rb.megabytes * factor).abs() < 1e-6 * rs.megabytes.max(1.0));
        prop_assert!((rs.useful_seconds - rb.useful_seconds).abs() < 1e-9);
    }

    /// A zero-length checkpoint never loses committed work to checkpoint
    /// interruption: megabytes come only from recoveries.
    #[test]
    fn zero_cost_checkpoint(seed in 0u64..5_000) {
        let ds = durations(60, seed);
        let policy = FixedIntervalPolicy { interval: 500.0 };
        let mut config = SimConfig::paper(0.0);
        config.recovery_cost = 0.0;
        let r = simulate_trace(&ds, &policy, &config).unwrap();
        prop_assert_eq!(r.checkpoint_seconds, 0.0);
        prop_assert_eq!(r.recovery_seconds, 0.0);
    }

    /// The cached policy stays within 10 % of the exact policy's
    /// simulated efficiency (interpolation cannot wreck schedules).
    #[test]
    fn cached_policy_faithful(seed in 0u64..200) {
        use chs_dist::fit::fit_model;
        use chs_dist::ModelKind;
        let ds = durations(150, seed);
        let (train, test) = ds.split_at(25);
        if let Ok(fit) = fit_model(ModelKind::Weibull, train) {
            let c = 250.0;
            let max_age = test.iter().cloned().fold(0.0f64, f64::max);
            let cached = CachedPolicy::new(fit.clone(), CheckpointCosts::symmetric(c), max_age);
            let exact = chs_sim::ModelPolicy::new(fit, CheckpointCosts::symmetric(c));
            let rc = simulate_trace(test, &cached, &SimConfig::paper(c)).unwrap();
            let re = simulate_trace(test, &exact, &SimConfig::paper(c)).unwrap();
            let diff = (rc.efficiency() - re.efficiency()).abs();
            prop_assert!(diff < 0.10, "cached {} vs exact {}", rc.efficiency(), re.efficiency());
        }
    }
}
