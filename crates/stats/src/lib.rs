//! Statistics for the paper's evaluation methodology: summary statistics,
//! Student-t 95 % confidence intervals, two-sided **paired** t-tests, and
//! the per-row significance-marker annotations of Tables 1 and 3.
//!
//! The paper compares four checkpoint-schedule models over the *same* set
//! of machines, so model comparisons are paired by machine; within each
//! checkpoint-cost row every pair of models gets a two-sided paired t-test
//! at α = 0.05, and each cell is annotated with the markers of the models
//! it significantly beats.

#![deny(missing_docs)]

pub mod nonparametric;
pub mod significance;
pub mod summary;
pub mod tdist;
pub mod ttest;

pub use nonparametric::{bootstrap_mean_ci, wilcoxon_signed_rank, WilcoxonResult};
pub use significance::{significance_markers, Direction};
pub use summary::{mean, sample_variance, std_dev, Summary};
pub use tdist::{t_cdf, t_quantile};
pub use ttest::{paired_t_test, TTestResult};

/// Errors from the statistics routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Not enough observations for the requested statistic.
    TooFewObservations {
        /// How many were needed.
        needed: usize,
        /// How many were supplied.
        got: usize,
    },
    /// Paired inputs of different lengths.
    LengthMismatch {
        /// Length of the first series.
        a: usize,
        /// Length of the second series.
        b: usize,
    },
    /// A numerics routine failed.
    Numerics(chs_numerics::NumericsError),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::TooFewObservations { needed, got } => {
                write!(f, "need >= {needed} observations, got {got}")
            }
            StatsError::LengthMismatch { a, b } => {
                write!(f, "paired series have different lengths: {a} vs {b}")
            }
            StatsError::Numerics(e) => write!(f, "numerics failure: {e}"),
        }
    }
}

impl std::error::Error for StatsError {}

impl From<chs_numerics::NumericsError> for StatsError {
    fn from(e: chs_numerics::NumericsError) -> Self {
        StatsError::Numerics(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
