//! Nonparametric companions to the paired t-test: the Wilcoxon
//! signed-rank test and percentile-bootstrap confidence intervals.
//!
//! The paper's paired t-test assumes near-normal pairwise differences;
//! per-machine efficiencies are bounded in \[0, 1\] and can be skewed, so
//! a careful reproduction should confirm its significance calls with a
//! rank test. The ablation harness runs both.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Result of a two-sided Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilcoxonResult {
    /// The signed-rank statistic `W` (sum of ranks of positive
    /// differences).
    pub w_statistic: f64,
    /// Number of non-zero differences used.
    pub n_used: usize,
    /// Two-sided p-value (normal approximation with tie and continuity
    /// corrections; exact for tiny n is unnecessary at pool scale).
    pub p_value: f64,
}

impl WilcoxonResult {
    /// Whether the difference is significant at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Wilcoxon signed-rank test on paired series `a`, `b`.
///
/// Zero differences are dropped (Wilcoxon's convention); ties among the
/// absolute differences receive average ranks with the variance
/// correction `Σ(t³ − t)/48`.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<WilcoxonResult> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            a: a.len(),
            b: b.len(),
        });
    }
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 5 {
        return Err(StatsError::TooFewObservations { needed: 5, got: n });
    }
    // Rank by |difference| with average ranks for ties.
    diffs.sort_by(|x, y| x.abs().partial_cmp(&y.abs()).expect("finite differences"));
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_correction += t * t * t - t;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| *r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var <= 0.0 {
        // All differences tied to zero rank mass — call it insignificant.
        return Ok(WilcoxonResult {
            w_statistic: w_plus,
            n_used: n,
            p_value: 1.0,
        });
    }
    // Continuity correction.
    let z = (w_plus - mean).abs().max(0.5) - 0.5;
    let z = z / var.sqrt();
    let p = chs_numerics::special::erfc(z / std::f64::consts::SQRT_2);
    Ok(WilcoxonResult {
        w_statistic: w_plus,
        n_used: n,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Percentile bootstrap confidence interval for the mean of `xs`.
///
/// Deterministic given `seed`; `resamples` of 1000–10000 are typical.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Result<(f64, f64)> {
    if xs.len() < 2 {
        return Err(StatsError::TooFewObservations {
            needed: 2,
            got: xs.len(),
        });
    }
    if resamples < 10 {
        return Err(StatsError::TooFewObservations {
            needed: 10,
            got: resamples,
        });
    }
    // Small deterministic xorshift so chs-stats stays rand-free.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            let idx = (next() % n as u64) as usize;
            sum += xs[idx];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let tail = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64 * tail) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - tail)) as usize).min(resamples - 1);
    Ok((means[lo_idx], means[hi_idx]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::mean;

    #[test]
    fn rejects_bad_inputs() {
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0]).is_err());
        assert!(wilcoxon_signed_rank(&[1.0; 4], &[1.0; 4]).is_err()); // all zero diffs
    }

    #[test]
    fn identical_series_insignificant() {
        // With one tiny asymmetric wiggle the test must not fire.
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut b = a.clone();
        for (i, v) in b.iter_mut().enumerate() {
            *v += if i % 2 == 0 { 0.01 } else { -0.01 };
        }
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn consistent_shift_significant() {
        let a: Vec<f64> = (0..40)
            .map(|i| 0.5 + 0.01 * (i as f64 * 7.0 % 13.0))
            .collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.02).collect();
        let r = wilcoxon_signed_rank(&b, &a).unwrap();
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
        assert_eq!(r.n_used, 40);
    }

    #[test]
    fn agrees_with_t_test_on_clean_data() {
        // Deterministic pseudo-random paired sample with a real effect.
        let a: Vec<f64> = (0..60)
            .map(|i| 0.6 + 0.05 * (((i * 37) % 101) as f64 / 101.0))
            .collect();
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, x)| x - 0.01 - 0.005 * (((i * 53) % 7) as f64 / 7.0))
            .collect();
        let t = crate::paired_t_test(&a, &b).unwrap();
        let w = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(t.significant_at(0.05), w.significant_at(0.05));
        assert!(t.mean_difference > 0.0);
    }

    #[test]
    fn wilcoxon_robust_to_outlier_where_t_is_not() {
        // 24 small positive differences + one enormous negative outlier:
        // the t statistic is dragged down, ranks barely notice.
        let base: Vec<f64> = (0..25).map(|i| 1.0 + i as f64).collect();
        let mut shifted: Vec<f64> = base.iter().map(|x| x + 0.5).collect();
        shifted[0] = base[0] - 500.0;
        let w = wilcoxon_signed_rank(&shifted, &base).unwrap();
        let t = crate::paired_t_test(&shifted, &base).unwrap();
        assert!(w.significant_at(0.05), "wilcoxon p = {}", w.p_value);
        assert!(!t.significant_at(0.05), "t-test p = {}", t.p_value);
    }

    #[test]
    fn bootstrap_brackets_the_mean() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let m = mean(&xs);
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 2_000, 7).unwrap();
        assert!(lo < m && m < hi, "[{lo}, {hi}] vs {m}");
        // Comparable width to the t interval on well-behaved data.
        let t_ci = crate::Summary::ci95(&xs).unwrap();
        let width = hi - lo;
        assert!(
            (width / (2.0 * t_ci.half_width) - 1.0).abs() < 0.3,
            "widths differ: bootstrap {width} vs t {}",
            2.0 * t_ci.half_width
        );
    }

    #[test]
    fn bootstrap_deterministic() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&xs, 0.95, 500, 3).unwrap();
        let b = bootstrap_mean_ci(&xs, 0.95, 500, 3).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&xs, 0.95, 500, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn bootstrap_validation() {
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 100, 1).is_err());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 0.95, 5, 1).is_err());
    }
}
