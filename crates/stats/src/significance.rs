//! The significance-marker annotation scheme of the paper's Tables 1
//! and 3.
//!
//! Within one table row (one checkpoint cost), every pair of models is
//! compared with a two-sided paired t-test at α = 0.05. Each cell then
//! lists the one-character markers of every model it *significantly
//! beats* — e.g. "(e,w)" in the 2-phase hyperexponential column means its
//! value is statistically significantly better than the exponential's and
//! the Weibull's. "Better" is larger for efficiency (Table 1) and smaller
//! for bandwidth (Table 3).

use crate::ttest::paired_t_test;
use crate::Result;

/// Which direction counts as "better" for the metric being annotated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values win (efficiency, Table 1).
    HigherIsBetter,
    /// Smaller values win (bandwidth, Table 3).
    LowerIsBetter,
}

/// Compute the marker sets for one table row.
///
/// `series[i]` holds model `i`'s per-machine values (index-aligned across
/// models); `markers[i]` is model `i`'s one-character label. Returns, for
/// each model, the (sorted) markers of the models it significantly beats
/// at level `alpha`.
pub fn significance_markers(
    series: &[Vec<f64>],
    markers: &[char],
    direction: Direction,
    alpha: f64,
) -> Result<Vec<Vec<char>>> {
    assert_eq!(series.len(), markers.len(), "one marker per series");
    let k = series.len();
    let mut out: Vec<Vec<char>> = vec![Vec::new(); k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            let t = paired_t_test(&series[i], &series[j])?;
            let beats = match direction {
                Direction::HigherIsBetter => t.mean_difference > 0.0,
                Direction::LowerIsBetter => t.mean_difference < 0.0,
            };
            if beats && t.significant_at(alpha) {
                out[i].push(markers[j]);
            }
        }
        out[i].sort_unstable();
    }
    Ok(out)
}

/// Render a marker set the way the paper prints it: `""` when empty,
/// otherwise `"(e,w,2)"`.
pub fn render_markers(markers: &[char]) -> String {
    if markers.is_empty() {
        String::new()
    } else {
        let inner: Vec<String> = markers.iter().map(|c| c.to_string()).collect();
        format!("({})", inner.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three models over 30 machines: `worst < mid < best` with clear
    /// separation, plus per-machine offsets.
    fn three_series() -> Vec<Vec<f64>> {
        let machine_effect = |i: usize| 0.02 * ((i * 13 % 30) as f64);
        let worst: Vec<f64> = (0..30).map(|i| 0.40 + machine_effect(i)).collect();
        let mid: Vec<f64> = (0..30).map(|i| 0.50 + machine_effect(i)).collect();
        let best: Vec<f64> = (0..30).map(|i| 0.60 + machine_effect(i)).collect();
        vec![worst, mid, best]
    }

    #[test]
    fn higher_is_better_ordering() {
        let s = three_series();
        let m =
            significance_markers(&s, &['e', 'w', '2'], Direction::HigherIsBetter, 0.05).unwrap();
        assert_eq!(m[0], Vec::<char>::new()); // worst beats nobody
        assert_eq!(m[1], vec!['e']); // mid beats worst
        assert_eq!(m[2], vec!['e', 'w']); // best beats both
    }

    #[test]
    fn lower_is_better_flips() {
        let s = three_series();
        let m = significance_markers(&s, &['e', 'w', '2'], Direction::LowerIsBetter, 0.05).unwrap();
        assert_eq!(m[0], vec!['2', 'w']); // lowest wins now
        assert_eq!(m[2], Vec::<char>::new());
    }

    #[test]
    fn indistinguishable_series_get_no_markers() {
        let a: Vec<f64> = (0..25).map(|i| ((i * 37 % 101) as f64) / 101.0).collect();
        let b: Vec<f64> = (0..25).map(|i| ((i * 53 % 101) as f64) / 101.0).collect();
        let m =
            significance_markers(&[a, b], &['e', 'w'], Direction::HigherIsBetter, 0.05).unwrap();
        assert!(m[0].is_empty() && m[1].is_empty());
    }

    #[test]
    fn rendering_matches_paper_format() {
        assert_eq!(render_markers(&[]), "");
        assert_eq!(render_markers(&['e']), "(e)");
        assert_eq!(render_markers(&['e', 'w', '2']), "(e,w,2)");
    }

    #[test]
    fn markers_sorted() {
        let s = three_series();
        let m =
            significance_markers(&s, &['w', '2', 'e'], Direction::HigherIsBetter, 0.05).unwrap();
        // best beats 'w' and '2' → sorted as ['2', 'w'].
        assert_eq!(m[2], vec!['2', 'w']);
    }
}
