//! Summary statistics and Student-t confidence intervals.

use crate::tdist::t_quantile;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (n − 1 denominator), via the two-pass
/// algorithm for numerical stability.
pub fn sample_variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::TooFewObservations {
            needed: 2,
            got: xs.len(),
        });
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(sample_variance(xs)?.sqrt())
}

/// Mean with a symmetric Student-t confidence interval — the `x̄ ± h`
/// format of the paper's Tables 1 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the confidence interval.
    pub half_width: f64,
    /// Sample size.
    pub n: usize,
    /// Confidence level used (e.g. 0.95).
    pub confidence: f64,
}

impl Summary {
    /// Compute the mean and `confidence`-level t-interval of `xs`.
    pub fn compute(xs: &[f64], confidence: f64) -> Result<Summary> {
        if xs.len() < 2 {
            return Err(StatsError::TooFewObservations {
                needed: 2,
                got: xs.len(),
            });
        }
        let n = xs.len();
        let m = mean(xs);
        let sd = std_dev(xs)?;
        let df = (n - 1) as f64;
        let t = t_quantile(0.5 + confidence / 2.0, df)?;
        Ok(Summary {
            mean: m,
            half_width: t * sd / (n as f64).sqrt(),
            n,
            confidence,
        })
    }

    /// The paper's 95 % interval.
    pub fn ci95(xs: &[f64]) -> Result<Summary> {
        Self::compute(xs, 0.95)
    }

    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Format as the paper prints it: `0.754 ± 0.013`.
    pub fn to_pm_string(&self, decimals: usize) -> String {
        format!(
            "{:.*} ± {:.*}",
            decimals, self.mean, decimals, self.half_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn variance_known_value() {
        // var of 2,4,4,4,5,5,7,9 (sample, n−1): mean 5, ss 32, var 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = sample_variance(&xs).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_needs_two() {
        assert!(sample_variance(&[1.0]).is_err());
        assert!(sample_variance(&[]).is_err());
    }

    #[test]
    fn ci_matches_hand_computed_t_table() {
        // n = 5, sd = 1, mean = 10: 95 % half-width = t_{.975,4}/√5 with
        // t_{.975,4} = 2.7764.
        let xs = [9.0, 9.5, 10.0, 10.5, 11.0];
        let s = Summary::ci95(&xs).unwrap();
        let sd = std_dev(&xs).unwrap();
        let expected = 2.776_445_105 * sd / 5.0f64.sqrt();
        assert!(
            (s.half_width - expected).abs() < 1e-6,
            "hw={}",
            s.half_width
        );
        assert_eq!(s.mean, 10.0);
        assert!(s.lo() < 10.0 && s.hi() > 10.0);
    }

    #[test]
    fn interval_narrows_with_n() {
        let xs5: Vec<f64> = (0..5).map(|i| (i % 2) as f64).collect();
        let xs500: Vec<f64> = (0..500).map(|i| (i % 2) as f64).collect();
        let s5 = Summary::ci95(&xs5).unwrap();
        let s500 = Summary::ci95(&xs500).unwrap();
        assert!(s500.half_width < s5.half_width / 3.0);
    }

    #[test]
    fn pm_formatting() {
        let s = Summary {
            mean: 0.7536,
            half_width: 0.0131,
            n: 640,
            confidence: 0.95,
        };
        assert_eq!(s.to_pm_string(3), "0.754 ± 0.013");
    }

    #[test]
    fn higher_confidence_wider_interval() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.37) % 5.0).collect();
        let s90 = Summary::compute(&xs, 0.90).unwrap();
        let s99 = Summary::compute(&xs, 0.99).unwrap();
        assert!(s99.half_width > s90.half_width);
    }
}
