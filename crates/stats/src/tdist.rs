//! Student-t distribution: CDF via the regularized incomplete beta
//! function and quantiles by monotone inversion.

use crate::Result;
use chs_numerics::roots::brent_root;
use chs_numerics::special::reg_inc_beta;

/// CDF of Student's t with `df` degrees of freedom.
///
/// Uses `P(T ≤ t) = 1 − I_{df/(df+t²)}(df/2, 1/2) / 2` for `t ≥ 0` and
/// symmetry for `t < 0`.
pub fn t_cdf(t: f64, df: f64) -> Result<f64> {
    let x = df / (df + t * t);
    let tail = 0.5 * reg_inc_beta(0.5 * df, 0.5, x)?;
    Ok(if t >= 0.0 { 1.0 - tail } else { tail })
}

/// Quantile (inverse CDF) of Student's t with `df` degrees of freedom,
/// for `p ∈ (0, 1)`.
pub fn t_quantile(p: f64, df: f64) -> Result<f64> {
    let valid = p > 0.0 && p < 1.0 && df > 0.0;
    if !valid {
        return Err(chs_numerics::NumericsError::DomainError {
            routine: "t_quantile",
            message: "requires 0 < p < 1 and df > 0",
        }
        .into());
    }
    if (p - 0.5).abs() < 1e-15 {
        return Ok(0.0);
    }
    // The t quantile is bounded in magnitude by the Cauchy (df = 1)
    // quantile, which has the closed form tan(π(p − 1/2)).
    let cauchy = (std::f64::consts::PI * (p - 0.5)).tan();
    let hi = cauchy.abs().max(1.0) * 2.0 + 10.0;
    let target = p;
    let root = brent_root(
        |t| t_cdf(t, df).unwrap_or(f64::NAN) - target,
        -hi,
        hi,
        1e-12,
    )?;
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chs_numerics::approx_eq;

    #[test]
    fn cdf_symmetry_and_center() {
        for &df in &[1.0, 4.0, 30.0, 200.0] {
            assert!(
                approx_eq(t_cdf(0.0, df).unwrap(), 0.5, 1e-12, 1e-13),
                "df={df}"
            );
            for &t in &[0.5, 1.0, 2.5] {
                let hi = t_cdf(t, df).unwrap();
                let lo = t_cdf(-t, df).unwrap();
                assert!(approx_eq(hi + lo, 1.0, 1e-12, 1e-12), "df={df} t={t}");
            }
        }
    }

    #[test]
    fn cdf_known_values() {
        // df = 1 is Cauchy: F(1) = 3/4.
        assert!(approx_eq(t_cdf(1.0, 1.0).unwrap(), 0.75, 1e-10, 0.0));
        // Large df approaches the normal: F(1.959964, 1e6) ≈ 0.975.
        assert!(approx_eq(t_cdf(1.959_964, 1e6).unwrap(), 0.975, 1e-4, 1e-5));
    }

    #[test]
    fn classic_t_table_values() {
        // Two-sided 95 % critical values from any t-table.
        let cases = [
            (4.0, 2.776_445_105),
            (10.0, 2.228_138_852),
            (30.0, 2.042_272_456),
            (100.0, 1.983_971_519),
        ];
        for &(df, expected) in &cases {
            let q = t_quantile(0.975, df).unwrap();
            assert!(
                approx_eq(q, expected, 1e-6, 1e-7),
                "df={df}: {q} vs {expected}"
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &df in &[2.0, 7.0, 639.0] {
            for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
                let q = t_quantile(p, df).unwrap();
                let back = t_cdf(q, df).unwrap();
                assert!(approx_eq(back, p, 1e-9, 1e-10), "df={df} p={p}");
            }
        }
    }

    #[test]
    fn quantile_domain() {
        assert!(t_quantile(0.0, 5.0).is_err());
        assert!(t_quantile(1.0, 5.0).is_err());
        assert!(t_quantile(0.5, -1.0).is_err());
        assert_eq!(t_quantile(0.5, 5.0).unwrap(), 0.0);
    }

    #[test]
    fn heavier_tails_at_low_df() {
        let q2 = t_quantile(0.975, 2.0).unwrap();
        let q100 = t_quantile(0.975, 100.0).unwrap();
        assert!(q2 > q100, "low-df t must have heavier tails");
    }
}
