//! Two-sided paired t-test (the paper's model-comparison test, α = 0.05).

use crate::summary::{mean, std_dev};
use crate::tdist::t_cdf;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Result of a paired t-test between two index-aligned series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// Mean of the pairwise differences `a_i − b_i`.
    pub mean_difference: f64,
    /// The t statistic `d̄ / (s_d / √n)`.
    pub t_statistic: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// Whether the difference is significant at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided paired t-test of `H0: mean(a − b) = 0`.
///
/// # Errors
/// * [`StatsError::LengthMismatch`] when the series differ in length.
/// * [`StatsError::TooFewObservations`] when `n < 2`.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            a: a.len(),
            b: b.len(),
        });
    }
    if a.len() < 2 {
        return Err(StatsError::TooFewObservations {
            needed: 2,
            got: a.len(),
        });
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len() as f64;
    let d_bar = mean(&diffs);
    let sd = std_dev(&diffs)?;
    let df = n - 1.0;
    if sd == 0.0 {
        // All differences identical: either exactly zero (p = 1) or a
        // deterministic offset (p = 0).
        return Ok(TTestResult {
            mean_difference: d_bar,
            t_statistic: if d_bar == 0.0 {
                0.0
            } else {
                f64::INFINITY.copysign(d_bar)
            },
            df,
            p_value: if d_bar == 0.0 { 1.0 } else { 0.0 },
        });
    }
    let t = d_bar / (sd / n.sqrt());
    let p = 2.0 * (1.0 - t_cdf(t.abs(), df)?);
    Ok(TTestResult {
        mean_difference: d_bar,
        t_statistic: t,
        df,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_err());
        assert!(paired_t_test(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn identical_series_not_significant() {
        let a = [0.7, 0.75, 0.68, 0.71];
        let r = paired_t_test(&a, &a).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.t_statistic, 0.0);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn constant_offset_fully_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.1, 2.1, 3.1, 4.1];
        let r = paired_t_test(&a, &b).unwrap();
        assert!((r.mean_difference + 0.1).abs() < 1e-12);
        assert_eq!(r.p_value, 0.0);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn hand_computed_example() {
        // Differences: 1, 2, 3, 4, 5 → d̄ = 3, s_d = √2.5, t = 3/(√2.5/√5)
        // = 3/√0.5 = 4.2426; df = 4; two-sided p ≈ 0.0132.
        let a = [11.0, 22.0, 33.0, 44.0, 55.0];
        let b = [10.0, 20.0, 30.0, 40.0, 50.0];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(
            (r.t_statistic - 4.242_640_687).abs() < 1e-6,
            "t={}",
            r.t_statistic
        );
        assert!((r.p_value - 0.013_23).abs() < 2e-4, "p={}", r.p_value);
        assert!(r.significant_at(0.05));
        assert!(!r.significant_at(0.01));
    }

    #[test]
    fn symmetry_in_argument_order() {
        let a = [0.9, 1.3, 0.8, 1.1, 1.4, 0.95];
        let b = [0.7, 1.1, 0.9, 1.0, 1.2, 0.80];
        let ab = paired_t_test(&a, &b).unwrap();
        let ba = paired_t_test(&b, &a).unwrap();
        assert!((ab.t_statistic + ba.t_statistic).abs() < 1e-12);
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
    }

    #[test]
    fn paired_beats_unpaired_when_machines_vary() {
        // Per-machine variation dwarfs the model effect; pairing still
        // detects a consistent small improvement.
        let base: Vec<f64> = (0..40)
            .map(|i| 0.3 + 0.01 * (i as f64 * 7.3 % 40.0))
            .collect();
        let better: Vec<f64> = base.iter().map(|x| x + 0.005).collect();
        let r = paired_t_test(&better, &base).unwrap();
        assert!(r.significant_at(0.05), "p={}", r.p_value);
        assert!(r.mean_difference > 0.0);
    }

    #[test]
    fn noise_rarely_significant() {
        // Deterministic pseudo-noise with ~zero mean difference.
        let a: Vec<f64> = (0..100).map(|i| ((i * 37 % 101) as f64) / 101.0).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i * 53 % 101) as f64) / 101.0).collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_value > 0.05, "spurious significance: p={}", r.p_value);
    }
}
