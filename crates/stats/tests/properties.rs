//! Property-based tests for the statistics crate.

use chs_stats::{
    bootstrap_mean_ci, mean, paired_t_test, t_cdf, t_quantile, wilcoxon_signed_rank, Summary,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// t CDF is a proper CDF: monotone, symmetric, centered.
    #[test]
    fn t_cdf_proper(df in 1.0f64..500.0, t1 in -8.0f64..8.0, dt in 0.0f64..4.0) {
        let lo = t_cdf(t1, df).unwrap();
        let hi = t_cdf(t1 + dt, df).unwrap();
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!(hi + 1e-12 >= lo);
        let sym = t_cdf(-t1, df).unwrap();
        prop_assert!((lo + sym - 1.0).abs() < 1e-10);
    }

    /// Quantile inverts the CDF across the plane.
    #[test]
    fn t_quantile_roundtrip(df in 1.0f64..500.0, p in 0.001f64..0.999) {
        let q = t_quantile(p, df).unwrap();
        let back = t_cdf(q, df).unwrap();
        prop_assert!((back - p).abs() < 1e-8);
    }

    /// The t interval always brackets the sample mean and shrinks when
    /// the data are duplicated (n doubles, variance identical).
    #[test]
    fn ci_brackets_mean(values in prop::collection::vec(-100.0f64..100.0, 5..60)) {
        // Degenerate all-equal samples have zero width; skip them.
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-9);
        let s = Summary::ci95(&values).unwrap();
        let m = mean(&values);
        prop_assert!(s.lo() <= m && m <= s.hi());
        let doubled: Vec<f64> = values.iter().chain(values.iter()).copied().collect();
        let s2 = Summary::ci95(&doubled).unwrap();
        prop_assert!(s2.half_width < s.half_width);
    }

    /// Paired t-test is antisymmetric in its arguments and invariant to
    /// adding a common machine effect to both series.
    #[test]
    fn t_test_invariances(
        base in prop::collection::vec(0.0f64..1.0, 8..40),
        shift in -0.3f64..0.3,
    ) {
        // A constant shift has zero difference-variance (t = ±∞), which is
        // handled but makes the antisymmetry arithmetic vacuous; require a
        // non-degenerate base.
        let spread = base.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - base.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let a: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, x)| x * 1.1 + shift.abs() + 0.01 + 0.001 * (i % 3) as f64)
            .collect();
        let ab = paired_t_test(&a, &base).unwrap();
        prop_assume!(ab.t_statistic.is_finite());
        let ba = paired_t_test(&base, &a).unwrap();
        prop_assert!((ab.t_statistic + ba.t_statistic).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        // Add a per-index machine effect to both: differences unchanged.
        let effect: Vec<f64> = (0..base.len()).map(|i| (i as f64) * 0.37).collect();
        let a2: Vec<f64> = a.iter().zip(&effect).map(|(x, e)| x + e).collect();
        let b2: Vec<f64> = base.iter().zip(&effect).map(|(x, e)| x + e).collect();
        let shifted = paired_t_test(&a2, &b2).unwrap();
        prop_assert!((shifted.t_statistic - ab.t_statistic).abs() < 1e-7);
    }

    /// Wilcoxon p-values live in [0, 1] and a strictly positive constant
    /// shift is detected once n is moderate.
    #[test]
    fn wilcoxon_detects_shift(base in prop::collection::vec(0.0f64..1.0, 20..60)) {
        let shifted: Vec<f64> = base.iter().map(|x| x + 0.5).collect();
        let r = wilcoxon_signed_rank(&shifted, &base).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.significant_at(0.01), "p = {}", r.p_value);
    }

    /// Bootstrap CI brackets the sample mean (up to percentile grid
    /// granularity) and is deterministic in the seed.
    #[test]
    fn bootstrap_properties(values in prop::collection::vec(0.0f64..10.0, 10..80), seed in 0u64..1000) {
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-9);
        let (lo, hi) = bootstrap_mean_ci(&values, 0.95, 400, seed).unwrap();
        let m = mean(&values);
        prop_assert!(lo <= m + 1e-9 && m <= hi + 1e-9, "[{lo},{hi}] vs {m}");
        let again = bootstrap_mean_ci(&values, 0.95, 400, seed).unwrap();
        prop_assert_eq!((lo, hi), again);
    }
}
