//! Descriptive statistics for availability traces.
//!
//! The paper's related-work section contrasts studies that assumed
//! exponential availability with measurements showing heavy tails; this
//! module provides the numbers that settle the question for any trace:
//! moments, coefficient of variation (CV > 1 ⇒ heavier than exponential),
//! lag autocorrelation (i.i.d.-ness of consecutive durations), the Hill
//! tail-index estimator, and the empirical CDF.

use crate::{AvailabilityTrace, Result, TraceError};
use serde::{Deserialize, Serialize};

/// Summary statistics of one duration sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of durations.
    pub count: usize,
    /// Arithmetic mean, seconds.
    pub mean: f64,
    /// Median, seconds.
    pub median: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation `σ/μ`; 1 for exponential data, > 1 for
    /// hyperexponential-like (bursty) data.
    pub cv: f64,
    /// Minimum duration.
    pub min: f64,
    /// Maximum duration.
    pub max: f64,
    /// Lag-1 autocorrelation of consecutive durations.
    pub lag1_autocorrelation: f64,
}

/// Compute [`TraceStats`] for a duration sample.
pub fn stats(durations: &[f64]) -> Result<TraceStats> {
    if durations.len() < 2 {
        return Err(TraceError::SplitTooLarge {
            requested: 2,
            available: durations.len(),
        });
    }
    let n = durations.len() as f64;
    let mean = durations.iter().sum::<f64>() / n;
    let var = durations
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1.0);
    let std_dev = var.sqrt();
    let mut sorted = durations.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    Ok(TraceStats {
        count: durations.len(),
        mean,
        median,
        std_dev,
        cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
        min: sorted[0],
        max: *sorted.last().expect("nonempty"),
        lag1_autocorrelation: autocorrelation(durations, 1),
    })
}

/// Lag-`k` autocorrelation of a series (0 when undefined).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    cov / var
}

/// Hill estimator of the tail index using the top `k` order statistics:
/// `α̂ = k / Σ_{i<k} ln(x_(n−i) / x_(n−k))`.
///
/// For Pareto-like tails `P(X > x) ~ x^{−α}` it estimates `α`; smaller
/// values mean heavier tails. Exponential tails drift to large `α̂` as
/// `k/n → 0`.
///
/// # Errors
/// Needs at least `k + 1` strictly positive observations with `k ≥ 2`.
pub fn hill_tail_index(durations: &[f64], k: usize) -> Result<f64> {
    if k < 2 || durations.len() <= k {
        return Err(TraceError::SplitTooLarge {
            requested: k + 1,
            available: durations.len(),
        });
    }
    let mut sorted = durations.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("durations are finite")); // descending
    let threshold = sorted[k];
    if threshold <= 0.0 {
        return Err(TraceError::InvalidObservation { index: k });
    }
    let sum: f64 = sorted[..k].iter().map(|&x| (x / threshold).ln()).sum();
    if sum <= 0.0 {
        return Err(TraceError::InvalidObservation { index: 0 });
    }
    Ok(k as f64 / sum)
}

/// Empirical CDF evaluated at `x` over the sample.
pub fn empirical_cdf(durations: &[f64], x: f64) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let below = durations.iter().filter(|&&d| d <= x).count();
    below as f64 / durations.len() as f64
}

/// A simple log-spaced histogram of durations (for terminal display and
/// sanity-checking pool calibration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bin edges (seconds), ascending; `counts.len() == edges.len() - 1`.
    pub edges: Vec<f64>,
    /// Observations per bin.
    pub counts: Vec<usize>,
}

/// Build a histogram with `bins` log-spaced bins spanning the data.
pub fn log_histogram(durations: &[f64], bins: usize) -> Result<LogHistogram> {
    if durations.is_empty() || bins == 0 {
        return Err(TraceError::SplitTooLarge {
            requested: 1,
            available: 0,
        });
    }
    let min = durations
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let max = durations
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(min * (1.0 + 1e-9));
    let ratio = (max / min).powf(1.0 / bins as f64);
    let mut edges = Vec::with_capacity(bins + 1);
    let mut e = min;
    for _ in 0..=bins {
        edges.push(e);
        e *= ratio;
    }
    let mut counts = vec![0usize; bins];
    for &d in durations {
        let idx = if d <= min {
            0
        } else {
            (((d / min).ln() / ratio.ln()).floor() as usize).min(bins - 1)
        };
        counts[idx] += 1;
    }
    Ok(LogHistogram { edges, counts })
}

/// Full per-machine report used by the `gof_report` experiment binary.
pub fn trace_report(trace: &AvailabilityTrace) -> Result<TraceStats> {
    stats(&trace.durations())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::known_weibull_trace;

    #[test]
    fn stats_hand_computed() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 4.0).abs() < 1e-12);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_needs_two() {
        assert!(stats(&[1.0]).is_err());
        assert!(stats(&[]).is_err());
    }

    #[test]
    fn exponential_data_cv_near_one() {
        use chs_dist::AvailabilityModel;
        use rand::SeedableRng;
        let d = chs_dist::Exponential::from_mean(1_000.0).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let s = stats(&xs).unwrap();
        assert!((s.cv - 1.0).abs() < 0.05, "cv = {}", s.cv);
        assert!(s.lag1_autocorrelation.abs() < 0.03);
    }

    #[test]
    fn heavy_tail_cv_exceeds_one() {
        let trace = known_weibull_trace(0.43, 3_409.0, 20_000, 2);
        let s = stats(&trace.durations()).unwrap();
        // Weibull(0.43) has CV ≈ 2.6.
        assert!(s.cv > 1.8, "cv = {}", s.cv);
    }

    #[test]
    fn autocorrelation_detects_trend() {
        let trending: Vec<f64> = (0..200).map(|i| i as f64).collect();
        assert!(autocorrelation(&trending, 1) > 0.9);
        let constant = vec![5.0; 100];
        assert_eq!(autocorrelation(&constant, 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
    }

    #[test]
    fn hill_estimator_on_pareto() {
        // Pareto(α = 2): X = U^{-1/2}.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| rng.gen::<f64>().max(1e-12).powf(-0.5))
            .collect();
        let alpha = hill_tail_index(&xs, 2_000).unwrap();
        assert!((alpha - 2.0).abs() < 0.15, "alpha = {alpha}");
    }

    #[test]
    fn hill_light_tail_larger_than_heavy() {
        use chs_dist::AvailabilityModel;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let heavy = known_weibull_trace(0.43, 3_409.0, 20_000, 4).durations();
        let light_dist = chs_dist::Weibull::new(2.0, 3_409.0).unwrap();
        let light: Vec<f64> = (0..20_000).map(|_| light_dist.sample(&mut rng)).collect();
        let a_heavy = hill_tail_index(&heavy, 500).unwrap();
        let a_light = hill_tail_index(&light, 500).unwrap();
        assert!(a_light > a_heavy, "light {a_light} !> heavy {a_heavy}");
    }

    #[test]
    fn hill_domain_errors() {
        assert!(hill_tail_index(&[1.0, 2.0], 2).is_err());
        assert!(hill_tail_index(&[1.0, 2.0, 3.0], 1).is_err());
    }

    #[test]
    fn empirical_cdf_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_cdf(&xs, 0.5), 0.0);
        assert_eq!(empirical_cdf(&xs, 2.0), 0.5);
        assert_eq!(empirical_cdf(&xs, 10.0), 1.0);
        assert_eq!(empirical_cdf(&[], 1.0), 0.0);
    }

    #[test]
    fn histogram_conserves_count() {
        let trace = known_weibull_trace(0.43, 3_409.0, 5_000, 5);
        let h = log_histogram(&trace.durations(), 20).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), 5_000);
        assert_eq!(h.edges.len(), 21);
        for w in h.edges.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn histogram_rejects_empty() {
        assert!(log_histogram(&[], 10).is_err());
        assert!(log_histogram(&[1.0], 0).is_err());
    }
}
