//! Trace persistence: JSON for pools (lossless, schema'd via serde) and a
//! simple CSV for interoperability with the original paper's
//! Matlab/EMPht tooling (one `machine,start,duration` row per
//! observation).

use crate::{AvailabilityTrace, MachineId, MachinePool, Observation, Result, TraceError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Serialize a pool to pretty JSON.
pub fn pool_to_json(pool: &MachinePool) -> Result<String> {
    serde_json::to_string_pretty(pool).map_err(|e| TraceError::Io(e.to_string()))
}

/// Deserialize a pool from JSON.
pub fn pool_from_json(json: &str) -> Result<MachinePool> {
    serde_json::from_str(json).map_err(|e| TraceError::Io(e.to_string()))
}

/// Write a pool to a JSON file.
pub fn save_pool<P: AsRef<Path>>(pool: &MachinePool, path: P) -> Result<()> {
    let file = std::fs::File::create(path).map_err(|e| TraceError::Io(e.to_string()))?;
    let mut w = BufWriter::new(file);
    let json = pool_to_json(pool)?;
    w.write_all(json.as_bytes())
        .map_err(|e| TraceError::Io(e.to_string()))
}

/// Load a pool from a JSON file.
pub fn load_pool<P: AsRef<Path>>(path: P) -> Result<MachinePool> {
    let file = std::fs::File::open(path).map_err(|e| TraceError::Io(e.to_string()))?;
    let mut json = String::new();
    BufReader::new(file)
        .read_to_string(&mut json)
        .map_err(|e| TraceError::Io(e.to_string()))?;
    pool_from_json(&json)
}

/// Write a pool as CSV: header `machine,start,duration`, one row per
/// observation.
pub fn write_csv<W: Write>(pool: &MachinePool, mut w: W) -> Result<()> {
    let io_err = |e: std::io::Error| TraceError::Io(e.to_string());
    writeln!(w, "machine,start,duration").map_err(io_err)?;
    for trace in pool.traces() {
        for obs in trace.observations() {
            writeln!(w, "{},{},{}", trace.machine.0, obs.start, obs.duration).map_err(io_err)?;
        }
    }
    Ok(())
}

/// Parse a pool from `machine,start,duration` CSV (header required).
pub fn read_csv<R: Read>(r: R) -> Result<MachinePool> {
    let reader = BufReader::new(r);
    let mut rows: Vec<(u32, f64, f64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
        if lineno == 0 {
            if line.trim() != "machine,start,duration" {
                return Err(TraceError::Io(format!("unexpected CSV header: {line}")));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let parse = |s: Option<&str>, what: &str| -> Result<f64> {
            s.ok_or_else(|| TraceError::Io(format!("line {}: missing {what}", lineno + 1)))?
                .trim()
                .parse::<f64>()
                .map_err(|e| TraceError::Io(format!("line {}: {what}: {e}", lineno + 1)))
        };
        let machine = parse(parts.next(), "machine")? as u32;
        let start = parse(parts.next(), "start")?;
        let duration = parse(parts.next(), "duration")?;
        rows.push((machine, start, duration));
    }
    rows.sort_by_key(|r| r.0);
    let mut traces = Vec::new();
    let mut current: Option<(u32, Vec<Observation>)> = None;
    for (machine, start, duration) in rows {
        match &mut current {
            Some((id, obs)) if *id == machine => obs.push(Observation { start, duration }),
            _ => {
                if let Some((id, obs)) = current.take() {
                    traces.push(AvailabilityTrace::new(MachineId(id), obs)?);
                }
                current = Some((machine, vec![Observation { start, duration }]));
            }
        }
    }
    if let Some((id, obs)) = current {
        traces.push(AvailabilityTrace::new(MachineId(id), obs)?);
    }
    Ok(MachinePool::new(traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_pool, PoolConfig};

    fn sample_pool() -> MachinePool {
        generate_pool(&PoolConfig::small(5, 12, 21)).as_machine_pool()
    }

    #[test]
    fn json_roundtrip() {
        let pool = sample_pool();
        let json = pool_to_json(&pool).unwrap();
        let back = pool_from_json(&json).unwrap();
        assert_eq!(pool, back);
    }

    #[test]
    fn json_file_roundtrip() {
        let pool = sample_pool();
        let dir = std::env::temp_dir().join("chs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.json");
        save_pool(&pool, &path).unwrap();
        let back = load_pool(&path).unwrap();
        assert_eq!(pool, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let pool = sample_pool();
        let mut buf = Vec::new();
        write_csv(&pool, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(pool.len(), back.len());
        for (a, b) in pool.traces().iter().zip(back.traces()) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.len(), b.len());
            // CSV float formatting is shortest-roundtrip; exact equality holds.
            assert_eq!(a.durations(), b.durations());
        }
    }

    #[test]
    fn csv_rejects_bad_header() {
        assert!(read_csv("a,b,c\n1,2,3\n".as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_bad_rows() {
        assert!(read_csv("machine,start,duration\n1,2\n".as_bytes()).is_err());
        assert!(read_csv("machine,start,duration\n1,2,abc\n".as_bytes()).is_err());
    }

    #[test]
    fn csv_skips_blank_lines() {
        let pool = read_csv("machine,start,duration\n1,0,5\n\n1,10,7\n".as_bytes()).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.traces()[0].durations(), vec![5.0, 7.0]);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(pool_from_json("not json").is_err());
    }
}
