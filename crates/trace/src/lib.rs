//! Machine availability traces and the synthetic Condor-pool generator.
//!
//! The paper's monitor (§4) records, for every machine Condor assigns a
//! sensor process to, a sequence of **occupancy durations** with UTC
//! timestamps — ~640 Linux workstations over 18 months at the University
//! of Wisconsin. We do not have that proprietary data set, so this crate
//! supplies (a) the trace data structures and chronological train/test
//! split the paper's pipeline needs, and (b) a calibrated synthetic pool
//! generator (see [`synthetic`]) whose per-machine ground-truth processes
//! are heavy-tailed and heterogeneous in the way the paper reports
//! (exemplar machine fit: Weibull shape 0.43, scale 3409).

#![deny(missing_docs)]

pub mod analysis;
pub mod io;
pub mod perturb;
pub mod synthetic;

use serde::{Deserialize, Serialize};

/// Identifier of a machine in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine-{:04}", self.0)
    }
}

/// One recorded availability interval: the sensor occupied the machine
/// from `start` (seconds, UTC epoch) for `duration` seconds before being
/// evicted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// UTC timestamp (seconds) at which the availability interval began.
    pub start: f64,
    /// Length of the interval in seconds.
    pub duration: f64,
}

/// Errors from trace handling.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// An observation had a non-finite or non-positive duration.
    InvalidObservation {
        /// Index of the offending observation.
        index: usize,
    },
    /// A requested split needs more observations than the trace holds.
    SplitTooLarge {
        /// Requested training length.
        requested: usize,
        /// Available observations.
        available: usize,
    },
    /// Persistence failure.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::InvalidObservation { index } => {
                write!(f, "invalid observation at index {index}")
            }
            TraceError::SplitTooLarge {
                requested,
                available,
            } => {
                write!(f, "split of {requested} exceeds {available} observations")
            }
            TraceError::Io(e) => write!(f, "trace I/O: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TraceError>;

/// The availability history of one machine, ordered chronologically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityTrace {
    /// The machine this history belongs to.
    pub machine: MachineId,
    observations: Vec<Observation>,
}

impl AvailabilityTrace {
    /// Build a trace, validating durations and sorting by start time.
    pub fn new(machine: MachineId, mut observations: Vec<Observation>) -> Result<Self> {
        for (i, o) in observations.iter().enumerate() {
            if !(o.duration.is_finite() && o.duration > 0.0 && o.start.is_finite()) {
                return Err(TraceError::InvalidObservation { index: i });
            }
        }
        observations.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("validated finite"));
        Ok(Self {
            machine,
            observations,
        })
    }

    /// Build from bare durations with synthetic hourly timestamps (used
    /// when only durations matter, e.g. the paper's Table 2 trace).
    pub fn from_durations(machine: MachineId, durations: &[f64]) -> Result<Self> {
        let mut t = 0.0;
        let obs = durations
            .iter()
            .map(|&d| {
                let o = Observation {
                    start: t,
                    duration: d,
                };
                t += d + 1.0;
                o
            })
            .collect();
        Self::new(machine, obs)
    }

    /// The chronological observations.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// The availability durations in chronological order.
    pub fn durations(&self) -> Vec<f64> {
        self.observations.iter().map(|o| o.duration).collect()
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Sum of all availability durations (seconds of harvestable time).
    pub fn total_available(&self) -> f64 {
        self.observations.iter().map(|o| o.duration).sum()
    }

    /// Chronological split: the first `n_train` durations form the
    /// training set, the remainder the experimental set (paper §5.1 uses
    /// `n_train = 25`).
    pub fn split(&self, n_train: usize) -> Result<(Vec<f64>, Vec<f64>)> {
        if n_train > self.observations.len() {
            return Err(TraceError::SplitTooLarge {
                requested: n_train,
                available: self.observations.len(),
            });
        }
        let durations = self.durations();
        let (train, test) = durations.split_at(n_train);
        Ok((train.to_vec(), test.to_vec()))
    }
}

/// The paper's training-set size: the first 25 chronological durations.
pub const PAPER_TRAIN_LEN: usize = 25;

/// A pool of machine traces (the Condor pool view).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MachinePool {
    traces: Vec<AvailabilityTrace>,
}

impl MachinePool {
    /// Build a pool from traces.
    pub fn new(traces: Vec<AvailabilityTrace>) -> Self {
        Self { traces }
    }

    /// All traces.
    pub fn traces(&self) -> &[AvailabilityTrace] {
        &self.traces
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Retain only machines with at least `min_observations` recorded
    /// intervals — the paper's "sufficient number of times" filter that
    /// reduced >1000 monitored machines to ~640 usable ones.
    pub fn filter_min_observations(&self, min_observations: usize) -> MachinePool {
        MachinePool {
            traces: self
                .traces
                .iter()
                .filter(|t| t.len() >= min_observations)
                .cloned()
                .collect(),
        }
    }

    /// Look a machine up by id.
    pub fn get(&self, id: MachineId) -> Option<&AvailabilityTrace> {
        self.traces.iter().find(|t| t.machine == id)
    }

    /// Pool-wide mean availability duration.
    pub fn mean_duration(&self) -> f64 {
        let (sum, n) = self.traces.iter().fold((0.0, 0usize), |(s, n), t| {
            (s + t.total_available(), n + t.len())
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(start: f64, duration: f64) -> Observation {
        Observation { start, duration }
    }

    #[test]
    fn trace_validates_durations() {
        let m = MachineId(1);
        assert!(AvailabilityTrace::new(m, vec![obs(0.0, -5.0)]).is_err());
        assert!(AvailabilityTrace::new(m, vec![obs(0.0, 0.0)]).is_err());
        assert!(AvailabilityTrace::new(m, vec![obs(f64::NAN, 5.0)]).is_err());
        assert!(AvailabilityTrace::new(m, vec![obs(0.0, 5.0)]).is_ok());
    }

    #[test]
    fn trace_sorts_chronologically() {
        let t = AvailabilityTrace::new(
            MachineId(2),
            vec![obs(100.0, 5.0), obs(0.0, 7.0), obs(50.0, 3.0)],
        )
        .unwrap();
        assert_eq!(t.durations(), vec![7.0, 3.0, 5.0]);
    }

    #[test]
    fn split_is_chronological_prefix() {
        let durations: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let t = AvailabilityTrace::from_durations(MachineId(3), &durations).unwrap();
        let (train, test) = t.split(PAPER_TRAIN_LEN).unwrap();
        assert_eq!(train.len(), 25);
        assert_eq!(test.len(), 15);
        assert_eq!(train[0], 1.0);
        assert_eq!(test[0], 26.0);
    }

    #[test]
    fn split_too_large_errors() {
        let t = AvailabilityTrace::from_durations(MachineId(4), &[1.0, 2.0]).unwrap();
        assert!(t.split(3).is_err());
        assert!(t.split(2).is_ok());
    }

    #[test]
    fn totals() {
        let t = AvailabilityTrace::from_durations(MachineId(5), &[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(t.total_available(), 60.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn pool_filter_and_stats() {
        let t1 = AvailabilityTrace::from_durations(MachineId(1), &[10.0; 30]).unwrap();
        let t2 = AvailabilityTrace::from_durations(MachineId(2), &[20.0; 10]).unwrap();
        let pool = MachinePool::new(vec![t1, t2]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.filter_min_observations(26).len(), 1);
        let mean = pool.mean_duration();
        assert!((mean - (300.0 + 200.0) / 40.0).abs() < 1e-12);
        assert!(pool.get(MachineId(2)).is_some());
        assert!(pool.get(MachineId(9)).is_none());
    }

    #[test]
    fn machine_id_display() {
        assert_eq!(MachineId(7).to_string(), "machine-0007");
    }
}
