//! Trace perturbation for robustness experiments and failure injection.
//!
//! The fitted model is only as good as the history it was trained on;
//! these helpers degrade traces in controlled ways so tests can verify
//! that schedule quality falls off *gracefully* (and quantify by how
//! much): multiplicative jitter, truncation of the longest durations
//! (a pool whose owners became more aggressive), subsampling (sparser
//! monitoring), and regime shift (scaling of all durations between the
//! training and experimental eras).

use crate::{AvailabilityTrace, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Multiply every duration by an independent log-uniform factor in
/// `[1/(1+jitter), 1+jitter]`.
pub fn jitter_durations(
    trace: &AvailabilityTrace,
    jitter: f64,
    seed: u64,
) -> Result<AvailabilityTrace> {
    let jitter = jitter.max(0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let hi = (1.0 + jitter).ln();
    let perturbed: Vec<f64> = trace
        .durations()
        .iter()
        .map(|&d| {
            let u: f64 = rng.gen_range(-1.0..1.0);
            (d * (u * hi).exp()).max(1e-6)
        })
        .collect();
    AvailabilityTrace::from_durations(trace.machine, &perturbed)
}

/// Cap every duration at `cap` seconds (owners reclaim sooner).
pub fn truncate_durations(trace: &AvailabilityTrace, cap: f64) -> Result<AvailabilityTrace> {
    let capped: Vec<f64> = trace
        .durations()
        .iter()
        .map(|&d| d.min(cap).max(1e-6))
        .collect();
    AvailabilityTrace::from_durations(trace.machine, &capped)
}

/// Keep every `stride`-th duration (sparser monitoring coverage).
pub fn subsample(trace: &AvailabilityTrace, stride: usize) -> Result<AvailabilityTrace> {
    let stride = stride.max(1);
    let kept: Vec<f64> = trace.durations().iter().copied().step_by(stride).collect();
    AvailabilityTrace::from_durations(trace.machine, &kept)
}

/// Scale all durations by `factor` — models a regime shift between the
/// training era and the experimental era (e.g. semester start makes
/// owners far more active).
pub fn scale_durations(trace: &AvailabilityTrace, factor: f64) -> Result<AvailabilityTrace> {
    let scaled: Vec<f64> = trace
        .durations()
        .iter()
        .map(|&d| (d * factor).max(1e-6))
        .collect();
    AvailabilityTrace::from_durations(trace.machine, &scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::known_weibull_trace;

    fn base() -> AvailabilityTrace {
        known_weibull_trace(0.43, 3_409.0, 500, 9)
    }

    #[test]
    fn jitter_preserves_scale_statistically() {
        let t = base();
        let j = jitter_durations(&t, 0.2, 1).unwrap();
        assert_eq!(j.len(), t.len());
        let ratio = j.total_available() / t.total_available();
        assert!((ratio - 1.0).abs() < 0.1, "ratio {ratio}");
        // But individual values moved.
        let moved = t
            .durations()
            .iter()
            .zip(j.durations())
            .filter(|(a, b)| (**a - *b).abs() > 1e-9)
            .count();
        assert!(moved > 400);
    }

    #[test]
    fn jitter_zero_is_identity() {
        let t = base();
        let j = jitter_durations(&t, 0.0, 1).unwrap();
        assert_eq!(t.durations(), j.durations());
    }

    #[test]
    fn truncate_caps() {
        let t = base();
        let c = truncate_durations(&t, 1_000.0).unwrap();
        assert!(c.durations().iter().all(|&d| d <= 1_000.0));
        assert_eq!(c.len(), t.len());
    }

    #[test]
    fn subsample_thins() {
        let t = base();
        let s = subsample(&t, 5).unwrap();
        assert_eq!(s.len(), 100);
        assert_eq!(s.durations()[0], t.durations()[0]);
        assert_eq!(s.durations()[1], t.durations()[5]);
        // Stride 0/1 keep everything.
        assert_eq!(subsample(&t, 0).unwrap().len(), t.len());
    }

    #[test]
    fn scale_scales() {
        let t = base();
        let s = scale_durations(&t, 0.5).unwrap();
        let ratio = s.total_available() / t.total_available();
        assert!((ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn robustness_schedule_quality_degrades_gracefully() {
        // End-to-end robustness check: train on a *mis-scaled* history
        // (2x optimistic), simulate on the true trace, compare against
        // training on the truthful history. Quality must drop, but by a
        // bounded amount (no collapse).
        use chs_markov::CheckpointCosts;
        let t = base();
        let (train, test) = t.split(100).unwrap();
        let c = 250.0;
        let config = chs_sim::SimConfig::paper(c);
        let max_age = test.iter().cloned().fold(0.0f64, f64::max);

        let honest = chs_dist::fit::fit_weibull(&train).unwrap();
        let honest_policy = chs_sim::CachedPolicy::new(
            chs_dist::FittedModel::Weibull(honest),
            CheckpointCosts::symmetric(c),
            max_age,
        );
        let honest_eff = chs_sim::simulate_trace(&test, &honest_policy, &config)
            .unwrap()
            .efficiency();

        let eff_with_scale = |factor: f64| {
            let scaled_train: Vec<f64> = train.iter().map(|d| d * factor).collect();
            let fit = chs_dist::fit::fit_weibull(&scaled_train).unwrap();
            let policy = chs_sim::CachedPolicy::new(
                chs_dist::FittedModel::Weibull(fit),
                CheckpointCosts::symmetric(c),
                max_age,
            );
            chs_sim::simulate_trace(&test, &policy, &config)
                .unwrap()
                .efficiency()
        };

        // A 2x scale error barely matters — Γ/T is flat near its minimum
        // (graceful degradation, in either direction on one realization).
        let mild = eff_with_scale(2.0);
        assert!(
            (mild - honest_eff).abs() < 0.10,
            "2x scale error should move efficiency < 0.10: {honest_eff} -> {mild}"
        );
        // A 50x *pessimistic* error forces near-continuous checkpointing
        // and must hurt badly — the degradation is real, just gradual.
        let gross = eff_with_scale(1.0 / 50.0);
        assert!(
            gross < honest_eff - 0.10,
            "50x pessimistic error should cost > 0.10: {honest_eff} -> {gross}"
        );
    }
}
