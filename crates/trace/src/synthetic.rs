//! Synthetic Condor-pool generation.
//!
//! **Substitution note (DESIGN.md §5).** The paper's evaluation runs over
//! ~640 UW machines observed for 18 months. That data set is not
//! available, so experiments here run over a synthetic pool whose
//! per-machine ground-truth processes are drawn from a heterogeneous
//! meta-distribution calibrated to what the paper reports:
//!
//! * the exemplar machine MLE fit is Weibull(shape 0.43, scale 3409) —
//!   our Weibull machines draw shapes uniformly from \[0.3, 0.7\] and
//!   log-normal scales with median 3409;
//! * availability is bimodal in practice (short interactive-hours
//!   evictions vs. long nights/weekends) — a fraction of machines are
//!   2-phase hyperexponential, optionally with *diurnal* phase selection
//!   (day-time starts favor the short phase);
//! * a small fraction of machines are genuinely memoryless (exponential),
//!   keeping the model-comparison honest.
//!
//! Everything is deterministic given a seed: machine `i` derives its own
//! `ChaCha8` stream from `(seed, i)`.

use crate::{AvailabilityTrace, MachineId, MachinePool, Observation};
use chs_dist::{AvailabilityModel, Exponential, HyperExponential, Weibull};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Seconds per day.
pub const DAY: f64 = 86_400.0;
/// Seconds per hour.
pub const HOUR: f64 = 3_600.0;

/// The ground-truth availability process of one synthetic machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Heavy-tailed Weibull machine (the dominant population).
    Weibull(Weibull),
    /// Bimodal machine: short interactive evictions + long quiet periods.
    Bimodal(HyperExponential),
    /// Memoryless machine.
    Memoryless(Exponential),
    /// Bimodal with diurnal phase selection: an interval starting during
    /// working hours (9–17 local) draws from the short phase with
    /// probability `day_short_prob`, otherwise `night_short_prob`.
    Diurnal {
        /// Mean of the short (interactive-eviction) phase, seconds.
        short_mean: f64,
        /// Mean of the long (overnight/weekend) phase, seconds.
        long_mean: f64,
        /// P(short phase) for day-time starts.
        day_short_prob: f64,
        /// P(short phase) for night/weekend starts.
        night_short_prob: f64,
    },
}

impl GroundTruth {
    /// Draw one availability duration starting at UTC `start` seconds.
    pub fn sample_duration(&self, start: f64, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            GroundTruth::Weibull(w) => w.sample(rng),
            GroundTruth::Bimodal(h) => h.sample(rng),
            GroundTruth::Memoryless(e) => e.sample(rng),
            GroundTruth::Diurnal {
                short_mean,
                long_mean,
                day_short_prob,
                night_short_prob,
            } => {
                let hour_of_day = (start % DAY) / HOUR;
                let weekday = ((start / DAY) as u64) % 7 < 5;
                let is_work_hours = weekday && (9.0..17.0).contains(&hour_of_day);
                let p_short = if is_work_hours {
                    *day_short_prob
                } else {
                    *night_short_prob
                };
                let mean = if rng.gen::<f64>() < p_short {
                    *short_mean
                } else {
                    *long_mean
                };
                // Each phase is exponential.
                -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() * mean
            }
        }
    }

    /// The stationary mean duration (time-of-day averaged for diurnal).
    pub fn mean(&self) -> f64 {
        match self {
            GroundTruth::Weibull(w) => w.mean(),
            GroundTruth::Bimodal(h) => h.mean(),
            GroundTruth::Memoryless(e) => e.mean(),
            GroundTruth::Diurnal {
                short_mean,
                long_mean,
                day_short_prob,
                night_short_prob,
            } => {
                // Work hours are 8/24 of weekdays, i.e. 40/168 of the week.
                let work_frac: f64 = 40.0 / 168.0;
                let p = work_frac * day_short_prob + (1.0 - work_frac) * night_short_prob;
                p * short_mean + (1.0 - p) * long_mean
            }
        }
    }
}

/// Configuration for the synthetic pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Number of machines (the paper's usable pool: ~640).
    pub machines: usize,
    /// Observations recorded per machine.
    pub observations_per_machine: usize,
    /// Fraction of heavy-tailed Weibull machines.
    pub weibull_fraction: f64,
    /// Fraction of bimodal hyperexponential machines.
    pub bimodal_fraction: f64,
    /// Fraction of diurnal machines (the remainder is memoryless).
    pub diurnal_fraction: f64,
    /// Weibull shape range (uniform).
    pub shape_range: (f64, f64),
    /// Median Weibull scale; per-machine scales are log-normal around it.
    pub median_scale: f64,
    /// σ of the log-normal scale spread.
    pub scale_log_sigma: f64,
    /// Mean un-availability gap between observations, seconds.
    pub mean_gap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            machines: 640,
            observations_per_machine: 225, // 25 training + 200 experimental
            weibull_fraction: 0.45,
            bimodal_fraction: 0.38,
            diurnal_fraction: 0.12,
            shape_range: (0.30, 0.70),
            // Calibrated so the pool-average efficiency curve matches the
            // paper's Figure 3 (≈0.75 at C = 50 s falling to ≈0.33 at
            // C = 1500 s): pool-median availability ≈ 25–40 min, with a
            // log-normal spread wide enough that the paper's exemplar
            // machine (scale 3409) sits in the upper quartile.
            median_scale: 700.0,
            scale_log_sigma: 0.9,
            mean_gap: 2.0 * HOUR,
            seed: 0xC0_4D_02, // "condor"
        }
    }
}

impl PoolConfig {
    /// A small pool for fast tests and examples.
    pub fn small(machines: usize, observations: usize, seed: u64) -> Self {
        Self {
            machines,
            observations_per_machine: observations,
            seed,
            ..Self::default()
        }
    }
}

/// A generated machine: its trace plus the ground truth that produced it
/// (kept so experiments can compare fitted models against the truth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticMachine {
    /// The generated availability history.
    pub trace: AvailabilityTrace,
    /// The process that generated it.
    pub ground_truth: GroundTruth,
}

/// A fully generated pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticPool {
    /// Per-machine traces with their ground truths.
    pub machines: Vec<SyntheticMachine>,
    /// The configuration that produced the pool.
    pub config: PoolConfig,
}

impl SyntheticPool {
    /// Strip ground truths, yielding the plain [`MachinePool`] view the
    /// fitting pipeline consumes.
    pub fn as_machine_pool(&self) -> MachinePool {
        MachinePool::new(self.machines.iter().map(|m| m.trace.clone()).collect())
    }
}

/// Generate a synthetic Condor pool deterministically from `config`.
pub fn generate_pool(config: &PoolConfig) -> SyntheticPool {
    let machines = (0..config.machines)
        .map(|i| generate_machine(config, i as u32))
        .collect();
    SyntheticPool {
        machines,
        config: clone_config(config),
    }
}

fn clone_config(c: &PoolConfig) -> PoolConfig {
    c.clone()
}

/// Generate one machine (deterministic in `(config.seed, index)`).
pub fn generate_machine(config: &PoolConfig, index: u32) -> SyntheticMachine {
    let mut rng = machine_rng(config.seed, index);
    let ground_truth = draw_ground_truth(config, &mut rng);
    let trace = synthesize_trace(
        MachineId(index),
        &ground_truth,
        config.observations_per_machine,
        config.mean_gap,
        &mut rng,
    );
    SyntheticMachine {
        trace,
        ground_truth,
    }
}

/// Derive machine `index`'s RNG stream from the pool seed.
fn machine_rng(seed: u64, index: u32) -> ChaCha8Rng {
    // SplitMix-style mix so adjacent indices decorrelate.
    let mut z = seed ^ (u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

fn draw_ground_truth(config: &PoolConfig, rng: &mut ChaCha8Rng) -> GroundTruth {
    let (lo, hi) = config.shape_range;
    let class: f64 = rng.gen();
    if class < config.weibull_fraction {
        let shape = lo + (hi - lo) * rng.gen::<f64>();
        // log-normal scale: median · e^{σZ} with Z ~ N(0,1) (Box–Muller).
        let z = standard_normal(rng);
        let scale = config.median_scale * (config.scale_log_sigma * z).exp();
        GroundTruth::Weibull(Weibull::new(shape, scale).expect("valid synthetic params"))
    } else if class < config.weibull_fraction + config.bimodal_fraction {
        // Short phase: minutes; long phase: a few hours (nights/weekends).
        let short_mean = 60.0 + 360.0 * rng.gen::<f64>();
        let long_mean = 1.5 * HOUR + 6.0 * HOUR * rng.gen::<f64>();
        let p_short = 0.55 + 0.35 * rng.gen::<f64>();
        GroundTruth::Bimodal(
            HyperExponential::new(&[
                (p_short, 1.0 / short_mean),
                (1.0 - p_short, 1.0 / long_mean),
            ])
            .expect("valid synthetic params"),
        )
    } else if class < config.weibull_fraction + config.bimodal_fraction + config.diurnal_fraction {
        GroundTruth::Diurnal {
            short_mean: 180.0 + 600.0 * rng.gen::<f64>(),
            long_mean: 3.0 * HOUR + 9.0 * HOUR * rng.gen::<f64>(),
            day_short_prob: 0.85,
            night_short_prob: 0.25,
        }
    } else {
        let mean = 0.5 * HOUR + 2.0 * HOUR * rng.gen::<f64>();
        GroundTruth::Memoryless(Exponential::from_mean(mean).expect("valid synthetic params"))
    }
}

fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    // Box–Muller; u1 bounded away from 0.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Synthesize a trace: alternating availability durations and
/// exponentially distributed off-pool gaps, starting from a random phase
/// of the week.
fn synthesize_trace(
    id: MachineId,
    truth: &GroundTruth,
    n: usize,
    mean_gap: f64,
    rng: &mut ChaCha8Rng,
) -> AvailabilityTrace {
    let mut t = rng.gen::<f64>() * 7.0 * DAY;
    let mut observations = Vec::with_capacity(n);
    for _ in 0..n {
        let d = truth.sample_duration(t, rng).max(1.0);
        observations.push(Observation {
            start: t,
            duration: d,
        });
        let gap = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() * mean_gap;
        t += d + gap;
    }
    AvailabilityTrace::new(id, observations).expect("synthesized durations are positive")
}

/// The paper's Table 2 synthetic trace: `n` durations drawn from a known
/// Weibull (shape 0.43, scale 3409 by default).
pub fn known_weibull_trace(shape: f64, scale: f64, n: usize, seed: u64) -> AvailabilityTrace {
    let w = Weibull::new(shape, scale).expect("caller supplies valid parameters");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let durations: Vec<f64> = (0..n).map(|_| w.sample(&mut rng).max(1e-6)).collect();
    AvailabilityTrace::from_durations(MachineId(0), &durations)
        .expect("weibull samples are positive")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic() {
        let cfg = PoolConfig::small(8, 40, 99);
        let a = generate_pool(&cfg);
        let b = generate_pool(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_pool(&PoolConfig::small(4, 30, 1));
        let b = generate_pool(&PoolConfig::small(4, 30, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn machines_are_heterogeneous() {
        let pool = generate_pool(&PoolConfig::small(64, 30, 7));
        let means: Vec<f64> = pool
            .machines
            .iter()
            .map(|m| m.ground_truth.mean())
            .collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 3.0, "pool too homogeneous: {min}..{max}");
    }

    #[test]
    fn class_mix_matches_config() {
        let pool = generate_pool(&PoolConfig::small(400, 5, 3));
        let weibulls = pool
            .machines
            .iter()
            .filter(|m| matches!(m.ground_truth, GroundTruth::Weibull(_)))
            .count();
        let frac = weibulls as f64 / 400.0;
        assert!(
            (frac - PoolConfig::default().weibull_fraction).abs() < 0.10,
            "weibull fraction {frac}"
        );
    }

    #[test]
    fn traces_have_requested_length_and_positive_durations() {
        let pool = generate_pool(&PoolConfig::small(10, 55, 5));
        for m in &pool.machines {
            assert_eq!(m.trace.len(), 55);
            assert!(m.trace.durations().iter().all(|&d| d > 0.0));
        }
    }

    #[test]
    fn observations_strictly_ordered_with_gaps() {
        let pool = generate_pool(&PoolConfig::small(3, 50, 11));
        for m in &pool.machines {
            let obs = m.trace.observations();
            for w in obs.windows(2) {
                assert!(
                    w[1].start > w[0].start + w[0].duration,
                    "observations overlap"
                );
            }
        }
    }

    #[test]
    fn pool_mean_in_condor_ballpark() {
        // Calibration: pool-wide mean duration should be hours-scale
        // (the exemplar machine's mean is ~2.5 h).
        let pool = generate_pool(&PoolConfig::default()).as_machine_pool();
        let mean = pool.mean_duration();
        assert!(
            mean > 0.5 * HOUR && mean < 24.0 * HOUR,
            "pool mean {mean} s out of calibration band"
        );
    }

    #[test]
    fn diurnal_short_during_work_hours() {
        let truth = GroundTruth::Diurnal {
            short_mean: 300.0,
            long_mean: 30_000.0,
            day_short_prob: 0.9,
            night_short_prob: 0.1,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let monday_10am = 10.0 * HOUR; // day 0 hour 10
        let saturday_3am = 5.0 * DAY + 3.0 * HOUR;
        let n = 4_000;
        let day_mean: f64 = (0..n)
            .map(|_| truth.sample_duration(monday_10am, &mut rng))
            .sum::<f64>()
            / n as f64;
        let night_mean: f64 = (0..n)
            .map(|_| truth.sample_duration(saturday_3am, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            night_mean > 3.0 * day_mean,
            "diurnal effect missing: day {day_mean} night {night_mean}"
        );
    }

    #[test]
    fn known_weibull_trace_statistics() {
        let t = known_weibull_trace(0.43, 3_409.0, 5_000, 42);
        assert_eq!(t.len(), 5_000);
        let mean = t.total_available() / 5_000.0;
        let w = Weibull::paper_exemplar();
        assert!(
            (mean / w.mean() - 1.0).abs() < 0.15,
            "sample mean {mean} vs dist mean {}",
            w.mean()
        );
    }

    #[test]
    fn known_weibull_trace_fit_recovers_parameters() {
        // End-to-end: the Table 2 pipeline premise — fitting the true
        // family to the synthetic trace recovers the generator.
        let t = known_weibull_trace(0.43, 3_409.0, 5_000, 1);
        let fit = chs_dist::fit::fit_weibull(&t.durations()).unwrap();
        assert!((fit.shape() - 0.43).abs() < 0.03, "shape {}", fit.shape());
        assert!(
            (fit.scale() / 3_409.0 - 1.0).abs() < 0.10,
            "scale {}",
            fit.scale()
        );
    }
}
