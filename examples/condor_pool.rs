//! Run a small emulated Condor pool end-to-end: the §5.2 live experiment
//! with instrumented test processes, a checkpoint manager, and measured
//! transfer costs feeding the schedule optimizer.
//!
//! ```text
//! cargo run --release --example condor_pool
//! ```

use cycle_harvest::condor::{run_experiment, ExperimentConfig};
use cycle_harvest::net::NetworkPath;

fn main() {
    let mut config = ExperimentConfig::campus();
    config.machines = 16;
    config.streams = 2;
    config.window = 86_400.0; // one virtual day

    println!(
        "emulated Condor pool: {} machines x {} streams, {}-second window,",
        config.machines, config.streams, config.window
    );
    println!(
        "checkpoint manager on the campus LAN ({:.0} MB/s mean)\n",
        NetworkPath::campus().mean_bandwidth()
    );

    let result = run_experiment(&config).expect("experiment");

    println!(
        "{:>20} {:>6} {:>11} {:>10} {:>8} {:>9}",
        "model", "eff", "total (h)", "MB moved", "MB/hour", "runs"
    );
    for s in &result.summaries {
        println!(
            "{:>20} {:>6.3} {:>11.1} {:>10.0} {:>8.0} {:>9}",
            s.model.label(),
            s.avg_efficiency,
            s.total_seconds / 3_600.0,
            s.megabytes,
            s.megabytes_per_hour,
            s.sample_size
        );
    }

    // Peek at one run's log the way the checkpoint manager records it.
    if let Some(run) = result.runs.iter().max_by_key(|r| r.transfers.len()) {
        println!(
            "\nbusiest run: {:?} on {} — placed at {:.0} s (machine age {:.0} s), \
             evicted at {:.0} s",
            run.model, run.machine, run.placed_at, run.age_at_placement, run.evicted_at
        );
        println!(
            "  {} transfers, {} checkpoints committed, {:.0} s useful work, {} heartbeats",
            run.transfers.len(),
            run.checkpoints_committed(),
            run.useful_seconds(),
            run.heartbeats
        );
        println!("  T_opt sequence: {:?}", round_all(&run.t_opts));
    }
}

fn round_all(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| x.round()).collect()
}
