//! The complete system loop of paper §4: run the occupancy monitor over
//! an emulated Condor pool to *collect* availability histories, feed them
//! into the `HistoryStore`, fit per-machine models, and compute the
//! checkpoint schedule a freshly placed job would use — no synthetic
//! shortcut anywhere in the chain.
//!
//! ```text
//! cargo run --release --example full_system
//! ```

use cycle_harvest::condor::{run_monitor, MachinePark, MonitorConfig};
use cycle_harvest::core::{HistoryStore, SchedulerConfig};
use cycle_harvest::dist::ModelKind;
use cycle_harvest::trace::analysis;
use cycle_harvest::trace::synthetic::PoolConfig;

fn main() {
    // 1. An emulated pool of desktops (owners come and go).
    let park = MachinePark::generate(&PoolConfig::default(), 8, 0, 120.0 * 86_400.0, 77);
    println!("pool: {} machines, 120 virtual days", park.len());

    // 2. The §4 monitor: sensor processes record occupancy durations.
    let campaign = MonitorConfig {
        campaign: 120.0 * 86_400.0,
        report_period: 10.0,
    };
    let collected = run_monitor(&park, &campaign);
    let observations: usize = collected.traces().iter().map(|t| t.len()).sum();
    println!("monitor recorded {observations} availability durations\n");

    // 3. Histories accumulate in the store (in production this persists
    //    across campaigns; see chs_trace::io for the JSON/CSV formats).
    let mut store = HistoryStore::new();
    store.import_pool(&collected);

    // 4. A job lands: fit the machine's model and compute its schedule.
    println!(
        "{:>14} {:>6} {:>9} {:>8} {:>11} {:>11} {:>9}",
        "machine", "obs", "mean(s)", "CV", "model", "T_opt(0)", "pred eff"
    );
    for trace in collected.traces() {
        let machine = trace.machine;
        let durations = store.durations(machine);
        if durations.len() < 10 {
            continue;
        }
        let st = analysis::stats(&durations).expect("enough data");
        // Heavier-tailed machines (CV > 1.3) get the hyperexponential;
        // others Weibull — or use CheckpointScheduler::fit_best for BIC
        // selection.
        let kind = if st.cv > 1.3 {
            ModelKind::HyperExponential { phases: 2 }
        } else {
            ModelKind::Weibull
        };
        let config = SchedulerConfig {
            checkpoint_cost: 110.0,
            recovery_cost: 110.0,
            ..Default::default()
        };
        match store.scheduler_for(machine, kind, config) {
            Ok(scheduler) => {
                let first = scheduler.next_interval(0.0).expect("optimizable");
                println!(
                    "{:>14} {:>6} {:>9.0} {:>8.2} {:>11} {:>9.0} s {:>9.3}",
                    machine.to_string(),
                    durations.len(),
                    st.mean,
                    st.cv,
                    match kind {
                        ModelKind::Weibull => "weibull",
                        _ => "hyper2",
                    },
                    first.work_seconds,
                    first.efficiency
                );
            }
            Err(e) => println!("{:>14}  unschedulable: {e}", machine.to_string()),
        }
    }
    println!(
        "\nflakier machines (small mean, large CV) get short first intervals; stable\n\
         ones get long intervals — less network traffic for the same efficiency."
    );
}
