//! Compare the four availability models on one machine trace: goodness
//! of fit, the schedules they produce, and the efficiency/bandwidth they
//! achieve in simulation — the paper's §5.1 pipeline in miniature.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use cycle_harvest::dist::fit::fit_model;
use cycle_harvest::dist::{gof, ModelKind};
use cycle_harvest::markov::CheckpointCosts;
use cycle_harvest::sim::{simulate_trace, CachedPolicy, SimConfig};
use cycle_harvest::trace::synthetic::{generate_machine, PoolConfig};
use cycle_harvest::trace::PAPER_TRAIN_LEN;

fn main() {
    // One synthetic Condor machine with 225 recorded availability
    // durations (the pool generator's default trace length).
    let config = PoolConfig {
        seed: 42,
        ..PoolConfig::default()
    };
    let machine = generate_machine(&config, 7);
    let trace = &machine.trace;
    let (train, test) = trace.split(PAPER_TRAIN_LEN).expect("long enough");
    println!(
        "machine {} — ground truth {:?}, {} training + {} experimental durations",
        trace.machine,
        variant_name(&machine.ground_truth),
        train.len(),
        test.len()
    );

    let c = 250.0;
    let max_age = test.iter().cloned().fold(0.0f64, f64::max);
    println!("\ncheckpoint cost C = R = {c} s, 500 MB images\n");
    println!(
        "{:>20} {:>10} {:>10} {:>8} {:>10} {:>12}",
        "model", "logLik", "KS", "KS p", "efficiency", "megabytes"
    );
    for kind in ModelKind::PAPER_SET {
        let fit = match fit_model(kind, &train) {
            Ok(f) => f,
            Err(e) => {
                println!("{:>20}  fit failed: {e}", kind.label());
                continue;
            }
        };
        let score = gof::score(&fit, &test).expect("scorable");
        let policy = CachedPolicy::new(fit, CheckpointCosts::symmetric(c), max_age);
        let result = simulate_trace(&test, &policy, &SimConfig::paper(c)).expect("simulate");
        println!(
            "{:>20} {:>10.1} {:>10.3} {:>8.3} {:>10.3} {:>12.0}",
            kind.label(),
            score.log_likelihood,
            score.ks,
            score.ks_p,
            result.efficiency(),
            result.megabytes
        );
    }
    println!(
        "\nthe models achieve similar efficiency but move very different amounts\n\
         of data — the paper's headline observation."
    );
}

fn variant_name(gt: &cycle_harvest::trace::synthetic::GroundTruth) -> &'static str {
    use cycle_harvest::trace::synthetic::GroundTruth::*;
    match gt {
        Weibull(_) => "heavy-tailed Weibull",
        Bimodal(_) => "bimodal hyperexponential",
        Memoryless(_) => "memoryless exponential",
        Diurnal { .. } => "diurnal bimodal",
    }
}
