//! Quickstart: from recorded availability history to a checkpoint
//! schedule in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cycle_harvest::core::{CheckpointScheduler, SchedulerConfig};
use cycle_harvest::dist::ModelKind;

fn main() {
    // Availability durations (seconds) the monitoring system recorded for
    // one desktop machine: lots of short owner-interrupted stretches plus
    // a few long nights — the heavy-tailed mix Condor pools exhibit.
    let history = vec![
        420.0, 55_000.0, 1_300.0, 240.0, 610.0, 86_000.0, 2_100.0, 330.0, 9_800.0, 180.0, 29_000.0,
        760.0, 3_600.0, 450.0, 1_150.0, 64_000.0, 540.0, 270.0, 15_000.0, 890.0, 410.0, 7_200.0,
        650.0, 32_000.0, 1_900.0,
    ];

    // Fit a Weibull availability model and configure the measured
    // checkpoint/recovery costs (500 MB over the campus LAN ≈ 110 s).
    let scheduler = CheckpointScheduler::fit(
        &history,
        ModelKind::Weibull,
        SchedulerConfig {
            checkpoint_cost: 110.0,
            recovery_cost: 110.0,
            ..Default::default()
        },
    )
    .expect("fit");

    println!("fitted model: {:?}", scheduler.model().kind());

    // The machine has been available for 10 minutes when our job lands.
    let age = 600.0;
    let schedule = scheduler
        .schedule(age, 8.0 * 3_600.0, 16)
        .expect("schedule");
    println!("\ncheckpoint schedule for the next ~8 hours (T_elapsed = {age} s):");
    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "#", "start age", "work interval", "efficiency"
    );
    for (i, entry) in schedule.entries().iter().enumerate() {
        println!(
            "{:>4} {:>10.0} s {:>12.0} s {:>12.3}",
            i, entry.start_age, entry.interval.work_seconds, entry.interval.efficiency
        );
    }
    println!(
        "\npredicted steady-state efficiency: {:.3}",
        schedule.predicted_efficiency()
    );
    println!(
        "note the intervals grow: the longer the machine survives, the longer\n\
         it is likely to keep surviving (decreasing hazard), so checkpoints\n\
         space out and network load drops."
    );
}
