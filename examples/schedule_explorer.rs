//! Explore how the optimal work interval responds to machine age and
//! checkpoint cost for the paper's exemplar machine
//! (Weibull shape 0.43, scale 3409).
//!
//! ```text
//! cargo run --release --example schedule_explorer
//! ```

use cycle_harvest::dist::Weibull;
use cycle_harvest::markov::{CheckpointCosts, VaidyaModel};

fn main() {
    let machine = Weibull::paper_exemplar();
    println!(
        "exemplar machine: Weibull(shape {}, scale {}) — mean availability {:.0} s\n",
        machine.shape(),
        machine.scale(),
        cycle_harvest::dist::AvailabilityModel::mean(&machine)
    );

    // T_opt as a function of machine age, for several checkpoint costs.
    let ages = [0.0, 600.0, 3_600.0, 4.0 * 3_600.0, 86_400.0];
    let costs = [50.0, 110.0, 475.0, 1_500.0];
    println!("T_opt (seconds) by machine age and checkpoint cost:");
    print!("{:>12}", "age \\ C");
    for c in costs {
        print!("{c:>10.0}");
    }
    println!();
    for age in ages {
        print!("{age:>12.0}");
        for c in costs {
            let model = VaidyaModel::new(&machine, CheckpointCosts::symmetric(c)).unwrap();
            let opt = model.optimal_interval(age).unwrap();
            print!("{:>10.0}", opt.work_seconds);
        }
        println!();
    }

    // The overhead-ratio curve the optimizer minimizes, at one setting.
    let c = 110.0;
    let age = 3_600.0;
    let model = VaidyaModel::new(&machine, CheckpointCosts::symmetric(c)).unwrap();
    let opt = model.optimal_interval(age).unwrap();
    println!(
        "\noverhead ratio Γ(T)/T at C = {c} s, age = {age} s \
         (minimum at T = {:.0} s, efficiency {:.3}):",
        opt.work_seconds, opt.efficiency
    );
    for factor in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let t = opt.work_seconds * factor;
        let ratio = model.overhead_ratio(t, age);
        let bar_len = (((ratio - 1.0) * 40.0).round() as usize).min(60);
        println!(
            "  T = {:>7.0} s  ratio {:>7.3}  {}",
            t,
            ratio,
            "#".repeat(bar_len.max(1))
        );
    }
    println!(
        "\nefficiency is flat near the optimum but checkpoint *frequency* is not:\n\
         longer intervals cut network load nearly in half at small efficiency cost."
    );
}
