//! `chs` — the cycle-harvest command line.
//!
//! Operates on availability-trace files (the CSV/JSON formats of
//! `chs_trace::io`) so the system can be driven without writing Rust:
//!
//! ```text
//! chs analyze  --trace pool.csv                      # descriptive statistics
//! chs fit      --trace pool.csv --machine 3          # fit all families, GOF scores
//! chs schedule --trace pool.csv --machine 3 \
//!              --model weibull --cost 110 --age 600  # print a checkpoint schedule
//! chs simulate --trace pool.csv --cost 250           # paper-style pool simulation
//! chs generate --machines 64 --out pool.csv          # synthesize a calibrated pool
//! ```
//!
//! Every subcommand prints human-readable tables to stdout; exit code 2
//! signals a usage error, 1 an execution failure.

use cycle_harvest::core::{CheckpointScheduler, SchedulerConfig};
use cycle_harvest::dist::fit::fit_model;
use cycle_harvest::dist::{gof, ModelKind};
use cycle_harvest::markov::CheckpointCosts;
use cycle_harvest::sim::{
    prepare_experiments, simulate_trace, sweep_paper_grid, CachedPolicy, SimConfig,
};
use cycle_harvest::trace::synthetic::{generate_pool, PoolConfig};
use cycle_harvest::trace::{analysis, io as trace_io, MachineId, MachinePool, PAPER_TRAIN_LEN};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Piping into `head` closes stdout early; dying quietly (the POSIX
    // default) beats a panic backtrace.
    reset_sigpipe();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::from(2);
    }
    let command = args.remove(0);
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    // Reject typo'd flags: a misspelled `--machne` silently analyzing the
    // whole pool is worse than an error.
    let allowed: &[&str] = match command.as_str() {
        "analyze" => &["trace", "machine"],
        "fit" => &["trace", "machine", "train"],
        "schedule" => &[
            "trace", "machine", "model", "cost", "recovery", "age", "horizon",
        ],
        "simulate" => &["trace", "machine", "cost", "train"],
        "generate" => &["machines", "observations", "seed", "out"],
        _ => &[],
    };
    if !allowed.is_empty() {
        for key in opts.keys() {
            if !allowed.contains(&key.as_str()) {
                eprintln!(
                    "error: unknown option --{key} for `{command}` (expected: {})",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    let result = match command.as_str() {
        "analyze" => cmd_analyze(&opts),
        "fit" => cmd_fit(&opts),
        "schedule" => cmd_schedule(&opts),
        "simulate" => cmd_simulate(&opts),
        "generate" => cmd_generate(&opts),
        "help" | "--help" | "-h" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            usage();
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Restore the default SIGPIPE disposition on Unix so `chs ... | head`
/// terminates quietly instead of panicking on a closed stdout. Uses the
/// raw syscall via `std`'s libc re-export-free path: a tiny `extern`
/// declaration avoids pulling in the `libc` crate for one constant.
fn reset_sigpipe() {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGPIPE: i32 = 13;
        const SIG_DFL: usize = 0;
        signal(SIGPIPE, SIG_DFL);
    }
}

fn usage() {
    eprintln!(
        "usage: chs <command> [options]\n\
         \n\
         commands:\n\
         \x20 analyze   --trace FILE [--machine N]          trace statistics\n\
         \x20 fit       --trace FILE --machine N [--train N] fit all families + GOF\n\
         \x20 schedule  --trace FILE --machine N --model M\n\
         \x20           [--cost S] [--recovery S] [--age S] [--horizon S]\n\
         \x20 simulate  --trace FILE [--cost S] [--train N]  pool simulation, all models\n\
         \x20 generate  --machines N [--observations N] [--seed S] --out FILE\n\
         \n\
         models: exponential | weibull | hyper2 | hyper3 | best\n\
         trace files: .csv (machine,start,duration) or .json"
    );
}

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{flag}`"));
        };
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok(opts)
}

fn get_f64(opts: &Opts, key: &str, default: f64) -> Result<f64, String> {
    // Every f64 option of this CLI is a duration/cost in seconds; reject
    // negatives and non-finite values here so they cannot reach the
    // simulation layer (whose config validation would abort the whole
    // pool sweep rather than fail one flag).
    match opts.get(key) {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(x) if x.is_finite() && x >= 0.0 => Ok(x),
            Ok(x) => Err(format!("--{key}: must be a non-negative number, got {x}")),
            Err(_) => Err(format!("--{key}: not a number: {v}")),
        },
    }
}

fn get_usize(opts: &Opts, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: not an integer: {v}")),
    }
}

fn load_pool(opts: &Opts) -> Result<MachinePool, String> {
    let path = opts.get("trace").ok_or("--trace FILE is required")?;
    if path.ends_with(".json") {
        trace_io::load_pool(path).map_err(|e| e.to_string())
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        trace_io::read_csv(std::io::BufReader::new(file)).map_err(|e| e.to_string())
    }
}

fn pick_machine<'p>(
    pool: &'p MachinePool,
    opts: &Opts,
) -> Result<&'p cycle_harvest::trace::AvailabilityTrace, String> {
    let id = get_usize(opts, "machine", usize::MAX)?;
    if id == usize::MAX {
        return Err("--machine N is required".to_string());
    }
    // Machine ids are u32 on disk; a larger number must not silently
    // truncate onto some other machine.
    let id32 = u32::try_from(id).map_err(|_| format!("--machine {id}: out of range"))?;
    pool.get(MachineId(id32))
        .ok_or_else(|| format!("machine {id} not in trace file"))
}

fn parse_model(name: &str) -> Result<Option<ModelKind>, String> {
    match name {
        "exponential" | "exp" | "e" => Ok(Some(ModelKind::Exponential)),
        "weibull" | "w" => Ok(Some(ModelKind::Weibull)),
        "hyper2" | "2" => Ok(Some(ModelKind::HyperExponential { phases: 2 })),
        "hyper3" | "3" => Ok(Some(ModelKind::HyperExponential { phases: 3 })),
        "best" => Ok(None),
        other => Err(format!("unknown model `{other}`")),
    }
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let pool = load_pool(opts)?;
    let machine = get_usize(opts, "machine", usize::MAX)?;
    if machine != usize::MAX {
        let trace = pick_machine(&pool, opts)?;
        let s = analysis::stats(&trace.durations()).map_err(|e| e.to_string())?;
        println!("machine {machine}: {} observations", s.count);
        println!(
            "  mean {:.0} s  median {:.0} s  CV {:.2}",
            s.mean, s.median, s.cv
        );
        println!(
            "  min {:.0} s  max {:.0} s  lag-1 ACF {:.3}",
            s.min, s.max, s.lag1_autocorrelation
        );
        return Ok(());
    }
    println!(
        "{} machines, {:>8} observations total",
        pool.len(),
        pool.traces().iter().map(|t| t.len()).sum::<usize>()
    );
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>7}",
        "machine", "obs", "mean(s)", "median(s)", "CV"
    );
    for t in pool.traces() {
        if let Ok(s) = analysis::stats(&t.durations()) {
            println!(
                "{:>8} {:>6} {:>10.0} {:>10.0} {:>7.2}",
                t.machine.0, s.count, s.mean, s.median, s.cv
            );
        }
    }
    Ok(())
}

fn cmd_fit(opts: &Opts) -> Result<(), String> {
    let pool = load_pool(opts)?;
    let trace = pick_machine(&pool, opts)?;
    let train_len = get_usize(opts, "train", PAPER_TRAIN_LEN)?;
    let (train, test) = trace
        .split(train_len.min(trace.len()))
        .map_err(|e| e.to_string())?;
    let score_set = if test.len() >= 10 { &test } else { &train };
    println!(
        "fitting on {} durations, scoring on {} held-out",
        train.len(),
        score_set.len()
    );
    println!(
        "{:>20} {:>12} {:>12} {:>9} {:>9}",
        "family", "logLik", "BIC", "KS", "KS p"
    );
    for kind in ModelKind::PAPER_SET {
        match fit_model(kind, &train) {
            Ok(fit) => {
                let s = gof::score(&fit, score_set).map_err(|e| e.to_string())?;
                println!(
                    "{:>20} {:>12.1} {:>12.1} {:>9.3} {:>9.3}",
                    kind.label(),
                    s.log_likelihood,
                    s.bic,
                    s.ks,
                    s.ks_p
                );
            }
            Err(e) => println!("{:>20}  fit failed: {e}", kind.label()),
        }
    }
    if let Ok(ln) = cycle_harvest::dist::fit_lognormal(&train) {
        let s = gof::score(&ln, score_set).map_err(|e| e.to_string())?;
        println!(
            "{:>20} {:>12.1} {:>12.1} {:>9.3} {:>9.3}",
            "Log-normal (ext)", s.log_likelihood, s.bic, s.ks, s.ks_p
        );
    }
    Ok(())
}

fn cmd_schedule(opts: &Opts) -> Result<(), String> {
    let pool = load_pool(opts)?;
    let trace = pick_machine(&pool, opts)?;
    let cost = get_f64(opts, "cost", 110.0)?;
    let recovery = get_f64(opts, "recovery", cost)?;
    let age = get_f64(opts, "age", 0.0)?;
    let horizon = get_f64(opts, "horizon", 8.0 * 3_600.0)?;
    let model_name = opts.get("model").map(String::as_str).unwrap_or("best");
    let config = SchedulerConfig {
        checkpoint_cost: cost,
        recovery_cost: recovery,
        ..Default::default()
    };
    let durations = trace.durations();
    let scheduler = match parse_model(model_name)? {
        Some(kind) => CheckpointScheduler::fit(&durations, kind, config),
        None => CheckpointScheduler::fit_best(&durations, config),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "model: {}   C = {cost} s, R = {recovery} s, T_elapsed = {age} s",
        scheduler.model().kind().label()
    );
    let schedule = scheduler
        .schedule(age, horizon, 64)
        .map_err(|e| e.to_string())?;
    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "#", "start age", "work interval", "efficiency"
    );
    for (i, e) in schedule.entries().iter().enumerate() {
        println!(
            "{:>4} {:>10.0} s {:>12.0} s {:>12.3}",
            i, e.start_age, e.interval.work_seconds, e.interval.efficiency
        );
    }
    println!(
        "predicted steady-state efficiency: {:.3}",
        schedule.predicted_efficiency()
    );
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), String> {
    let pool = load_pool(opts)?;
    let cost = get_f64(opts, "cost", 110.0)?;
    let train_len = get_usize(opts, "train", PAPER_TRAIN_LEN)?;
    let machine = get_usize(opts, "machine", usize::MAX)?;
    if machine != usize::MAX {
        // Single-machine simulation across all models.
        let trace = pick_machine(&pool, opts)?;
        let (train, test) = trace
            .split(train_len.min(trace.len()))
            .map_err(|e| e.to_string())?;
        if test.is_empty() {
            return Err("trace too short to hold out an experimental set".to_string());
        }
        let max_age = test.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "machine {machine}: C = R = {cost} s over {} held-out durations",
            test.len()
        );
        println!("{:>20} {:>12} {:>12}", "model", "efficiency", "megabytes");
        for kind in ModelKind::PAPER_SET {
            let Ok(fit) = fit_model(kind, &train) else {
                println!("{:>20}  fit failed", kind.label());
                continue;
            };
            let policy = CachedPolicy::new(fit, CheckpointCosts::symmetric(cost), max_age);
            let r = simulate_trace(&test, &policy, &SimConfig::paper(cost))
                .map_err(|e| e.to_string())?;
            println!(
                "{:>20} {:>12.3} {:>12.0}",
                kind.label(),
                r.efficiency(),
                r.megabytes
            );
        }
        return Ok(());
    }
    // Pool-wide: one row of the paper's Table 1/3 at the requested C.
    let experiments = prepare_experiments(&pool, train_len);
    if experiments.is_empty() {
        return Err("no machine had enough observations to fit and hold out".to_string());
    }
    let grid = sweep_paper_grid(&experiments, &[cost], 500.0);
    println!(
        "pool of {} usable machines at C = R = {cost} s (500 MB images)",
        experiments.len()
    );
    println!("{:>20} {:>12} {:>14}", "model", "mean eff", "mean MB");
    for (mi, kind) in ModelKind::PAPER_SET.iter().enumerate() {
        println!(
            "{:>20} {:>12.3} {:>14.0}",
            kind.label(),
            grid.mean_efficiency(0, mi),
            grid.mean_megabytes(0, mi)
        );
    }
    Ok(())
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let machines = get_usize(opts, "machines", 64)?;
    let observations = get_usize(opts, "observations", 225)?;
    let seed = get_usize(opts, "seed", 2_005)? as u64;
    let out = opts.get("out").ok_or("--out FILE is required")?;
    let config = PoolConfig {
        machines,
        observations_per_machine: observations,
        seed,
        ..PoolConfig::default()
    };
    let pool = generate_pool(&config).as_machine_pool();
    if out.ends_with(".json") {
        trace_io::save_pool(&pool, out).map_err(|e| e.to_string())?;
    } else {
        let file = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
        trace_io::write_csv(&pool, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    }
    let total_time: f64 = pool.traces().iter().map(|t| t.total_available()).sum();
    println!(
        "wrote {} machines x {} observations ({:.1} machine-days of availability) to {out}",
        machines,
        observations,
        total_time / 86_400.0
    );
    Ok(())
}
