//! `cycle-harvest` — checkpoint scheduling for cycle-harvesting cluster
//! environments.
//!
//! This is the umbrella crate of a workspace that reproduces
//! *"Minimizing the Network Overhead of Checkpointing in Cycle-harvesting
//! Cluster Environments"* (Nurmi, Brevik, Wolski — CLUSTER 2005). It
//! re-exports the public API of every subsystem so downstream users can
//! depend on one crate:
//!
//! * [`dist`] — availability distributions (exponential, Weibull,
//!   hyperexponential), conditional future lifetimes, MLE/EM fitting.
//! * [`markov`] — Vaidya's three-state checkpoint-interval model and the
//!   `T_opt` schedule optimizer.
//! * [`trace`] — availability traces and the synthetic Condor-pool
//!   generator.
//! * [`net`] — NWS-style network forecasting for checkpoint transfer
//!   times.
//! * [`cycle`] — the shared checkpoint-cycle state machine and its
//!   accounting ledger; every executor below drives it.
//! * [`sim`] — the trace-driven discrete-event simulator.
//! * [`condor`] — a virtual-time Condor emulation (machines, negotiator,
//!   Vanilla-universe jobs, checkpoint manager).
//! * [`pool`] — the pool-scale discrete-event simulator: 10⁵–10⁶
//!   machines contending on a hierarchical machine → rack → core
//!   network, with calendar-queue events and incremental max-min fair
//!   sharing.
//! * [`stats`] — confidence intervals, paired t-tests, significance
//!   tables.
//! * [`core`] — the high-level [`core::CheckpointScheduler`] facade.
//! * [`numerics`] — the numerical kernel underpinning everything.
//!
//! # Quickstart
//!
//! ```
//! use cycle_harvest::core::{CheckpointScheduler, SchedulerConfig};
//! use cycle_harvest::dist::ModelKind;
//!
//! // Historical availability durations for one machine (seconds).
//! let history = vec![1200.0, 300.0, 86_400.0, 4_500.0, 600.0, 30_000.0,
//!                    900.0, 2_000.0, 1_500.0, 60_000.0, 450.0, 700.0];
//!
//! let scheduler = CheckpointScheduler::fit(
//!     &history,
//!     ModelKind::Weibull,
//!     SchedulerConfig { checkpoint_cost: 110.0, recovery_cost: 110.0, ..Default::default() },
//! ).expect("fit");
//!
//! // Machine has been up 600 s: first optimal work interval.
//! let t0 = scheduler.next_interval(600.0).expect("optimize");
//! assert!(t0.work_seconds > 0.0);
//! ```

pub use chs_condor as condor;
pub use chs_core as core;
pub use chs_cycle as cycle;
pub use chs_dist as dist;
pub use chs_markov as markov;
pub use chs_net as net;
pub use chs_numerics as numerics;
pub use chs_pool as pool;
pub use chs_sim as sim;
pub use chs_stats as stats;
pub use chs_trace as trace;
