//! Integration test of the §5.3 right-censoring story: a short
//! measurement window truncates availability durations; naive fits on
//! the truncated data are biased pessimistic, the censored MLEs are not,
//! and the bias propagates into the checkpoint schedule.

use cycle_harvest::dist::fit::{
    censor_at_window, fit_exponential, fit_exponential_censored, fit_weibull, fit_weibull_censored,
    CensoredObs,
};
use cycle_harvest::dist::{AvailabilityModel, FittedModel, Weibull};
use cycle_harvest::markov::{CheckpointCosts, VaidyaModel};
use rand::SeedableRng;

fn ground_truth_durations(n: usize, seed: u64) -> Vec<f64> {
    let truth = Weibull::paper_exemplar();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| truth.sample(&mut rng).max(1.0)).collect()
}

/// Censor each duration individually at a cap (what a per-run observation
/// window does).
fn cap_censor(durations: &[f64], cap: f64) -> Vec<CensoredObs> {
    durations
        .iter()
        .map(|&d| {
            if d > cap {
                CensoredObs::censored(cap)
            } else {
                CensoredObs::exact(d)
            }
        })
        .collect()
}

#[test]
fn naive_fit_on_censored_data_is_pessimistic() {
    let durations = ground_truth_durations(8_000, 1);
    let cap = 2.0 * 3_600.0; // 2-hour observation cap
    let censored = cap_censor(&durations, cap);

    // Naive: pretend the capped values are real deaths.
    let naive_values: Vec<f64> = censored.iter().map(|o| o.value).collect();
    let naive = fit_weibull(&naive_values).unwrap();
    let proper = fit_weibull_censored(&censored).unwrap();
    let truth_mean = Weibull::paper_exemplar().mean();

    assert!(
        naive.mean() < 0.75 * truth_mean,
        "naive fit should understate the mean badly: {} vs {truth_mean}",
        naive.mean()
    );
    assert!(
        (proper.mean() / truth_mean - 1.0).abs() < 0.25,
        "censored fit should land near the truth: {} vs {truth_mean}",
        proper.mean()
    );
}

#[test]
fn censoring_bias_shortens_schedules() {
    // The downstream effect the paper cares about: a pessimistic fit
    // checkpoints too often, wasting network bandwidth.
    let durations = ground_truth_durations(8_000, 2);
    let cap = 2.0 * 3_600.0;
    let censored = cap_censor(&durations, cap);
    let naive_values: Vec<f64> = censored.iter().map(|o| o.value).collect();

    let c = 250.0;
    let t_of = |fit: FittedModel| {
        let v = VaidyaModel::new(fit.as_model(), CheckpointCosts::symmetric(c)).unwrap();
        v.optimal_interval(3_600.0).unwrap().work_seconds
    };
    let t_naive = t_of(FittedModel::Weibull(fit_weibull(&naive_values).unwrap()));
    let t_proper = t_of(FittedModel::Weibull(
        fit_weibull_censored(&censored).unwrap(),
    ));
    let t_truth = t_of(FittedModel::Weibull(Weibull::paper_exemplar()));

    assert!(
        t_naive < t_proper,
        "naive fit should checkpoint more often: {t_naive} !< {t_proper}"
    );
    let naive_err = (t_naive / t_truth - 1.0).abs();
    let proper_err = (t_proper / t_truth - 1.0).abs();
    assert!(
        proper_err < naive_err,
        "censored fit should be closer to the truth's schedule: \
         naive {t_naive}, proper {t_proper}, truth {t_truth}"
    );
}

#[test]
fn window_censoring_of_a_stream() {
    // censor_at_window models a *campaign* window over a back-to-back
    // stream; exponential censored MLE must still recover the rate.
    use cycle_harvest::dist::Exponential;
    let truth = Exponential::from_mean(3_600.0).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let mut all = Vec::new();
    // Many independent 6-hour windows over the stream.
    for _ in 0..4_000 {
        let durations: Vec<f64> = (0..4).map(|_| truth.sample(&mut rng)).collect();
        all.extend(censor_at_window(&durations, 6.0 * 3_600.0));
    }
    let censored_count = all.iter().filter(|o| o.censored).count();
    assert!(
        censored_count > 400,
        "windows should censor a meaningful share: {censored_count}"
    );
    let fit = fit_exponential_censored(&all).unwrap();
    assert!(
        (fit.mean() / 3_600.0 - 1.0).abs() < 0.05,
        "censored fit mean {}",
        fit.mean()
    );
    // Naive comparison.
    let naive_values: Vec<f64> = all.iter().map(|o| o.value).collect();
    let naive = fit_exponential(&naive_values).unwrap();
    assert!(naive.mean() < fit.mean(), "naive must be biased low");
}
