//! Reproducibility tests: every layer of the pipeline must be exactly
//! deterministic given its seed — the property that makes the experiment
//! binaries' recorded outputs in `results/` reproducible by reviewers.

use cycle_harvest::condor::{run_contention, run_experiment, ContentionConfig, ExperimentConfig};
use cycle_harvest::dist::ModelKind;
use cycle_harvest::sim::{prepare_experiments, sweep_paper_grid};
use cycle_harvest::trace::synthetic::{generate_pool, PoolConfig};

#[test]
fn full_sweep_pipeline_is_deterministic() {
    let run = || {
        let pool = generate_pool(&PoolConfig::small(10, 80, 5)).as_machine_pool();
        let experiments = prepare_experiments(&pool, 25);
        sweep_paper_grid(&experiments, &[100.0, 500.0], 500.0)
    };
    let a = run();
    let b = run();
    for ci in 0..2 {
        for mi in 0..4 {
            assert_eq!(
                a.cells[ci][mi].efficiency, b.cells[ci][mi].efficiency,
                "efficiency diverged at ({ci},{mi})"
            );
            assert_eq!(
                a.cells[ci][mi].megabytes, b.cells[ci][mi].megabytes,
                "megabytes diverged at ({ci},{mi})"
            );
        }
    }
}

#[test]
fn seeds_actually_matter() {
    let grid = |seed: u64| {
        let pool = generate_pool(&PoolConfig::small(6, 60, seed)).as_machine_pool();
        let experiments = prepare_experiments(&pool, 25);
        sweep_paper_grid(&experiments, &[250.0], 500.0)
    };
    let a = grid(1);
    let b = grid(2);
    assert_ne!(
        a.cells[0][0].efficiency, b.cells[0][0].efficiency,
        "different seeds must explore different pools"
    );
}

#[test]
fn live_experiment_bitwise_reproducible() {
    let mut config = ExperimentConfig::campus();
    config.machines = 6;
    config.streams = 1;
    config.window = 0.25 * 86_400.0;
    let a = run_experiment(&config).unwrap();
    let b = run_experiment(&config).unwrap();
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.summaries, b.summaries);
}

#[test]
fn contention_bitwise_reproducible() {
    let mut config = ContentionConfig::campus(4, ModelKind::HyperExponential { phases: 2 });
    config.window = 0.5 * 86_400.0;
    let a = run_contention(&config).unwrap();
    let b = run_contention(&config).unwrap();
    assert_eq!(a, b);
}

#[test]
fn rayon_parallelism_does_not_change_results() {
    // The sweep uses rayon internally; results must not depend on thread
    // interleaving. Compare a 1-thread pool against the default.
    let pool = generate_pool(&PoolConfig::small(8, 70, 9)).as_machine_pool();
    let experiments = prepare_experiments(&pool, 25);
    let sequential = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| sweep_paper_grid(&experiments, &[200.0], 500.0));
    let parallel = sweep_paper_grid(&experiments, &[200.0], 500.0);
    for mi in 0..4 {
        assert_eq!(
            sequential.cells[0][mi].efficiency,
            parallel.cells[0][mi].efficiency
        );
        assert_eq!(
            sequential.cells[0][mi].megabytes,
            parallel.cells[0][mi].megabytes
        );
    }
}
