//! End-to-end integration test: the full §5.1 pipeline — synthetic pool →
//! per-machine fits → grid sweep → statistics — at miniature scale, with
//! the paper's qualitative results asserted as invariants.

use cycle_harvest::dist::ModelKind;
use cycle_harvest::sim::{prepare_experiments, sweep_paper_grid};
use cycle_harvest::stats::{significance_markers, Direction, Summary};
use cycle_harvest::trace::synthetic::{generate_pool, PoolConfig};
use cycle_harvest::trace::PAPER_TRAIN_LEN;

fn run_pipeline(machines: usize, seed: u64) -> cycle_harvest::sim::SweepGrid {
    let pool = generate_pool(&PoolConfig::small(machines, 150, seed)).as_machine_pool();
    let experiments = prepare_experiments(&pool, PAPER_TRAIN_LEN);
    assert!(
        experiments.len() >= machines / 2,
        "most machines should be fittable: {}/{machines}",
        experiments.len()
    );
    sweep_paper_grid(&experiments, &[50.0, 250.0, 1_000.0], 500.0)
}

#[test]
fn efficiency_decreases_with_checkpoint_cost_for_every_model() {
    let grid = run_pipeline(16, 11);
    for mi in 0..4 {
        let effs: Vec<f64> = (0..3).map(|ci| grid.mean_efficiency(ci, mi)).collect();
        assert!(
            effs[0] > effs[1] && effs[1] > effs[2],
            "model {mi}: efficiencies not decreasing: {effs:?}"
        );
    }
}

#[test]
fn bandwidth_decreases_with_checkpoint_cost() {
    // Longer checkpoints → longer intervals → fewer transfers.
    let grid = run_pipeline(16, 12);
    for mi in 0..4 {
        let mbs: Vec<f64> = (0..3).map(|ci| grid.mean_megabytes(ci, mi)).collect();
        assert!(
            mbs[0] > mbs[1] && mbs[1] > mbs[2],
            "model {mi}: megabytes not decreasing: {mbs:?}"
        );
    }
}

#[test]
fn models_achieve_similar_efficiency_but_different_bandwidth() {
    // The paper's headline: efficiency spread across models is small
    // (within ~10 % relative), bandwidth spread is large (exponential
    // uses ≥ 15 % more than the best hyperexponential at C ≥ 250).
    let grid = run_pipeline(24, 13);
    for ci in 0..3 {
        let effs: Vec<f64> = (0..4).map(|mi| grid.mean_efficiency(ci, mi)).collect();
        let e_lo = effs.iter().cloned().fold(f64::INFINITY, f64::min);
        let e_hi = effs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            (e_hi - e_lo) / e_hi < 0.12,
            "c index {ci}: efficiency spread too large: {effs:?}"
        );
    }
    for ci in 1..3 {
        let exp_mb = grid.mean_megabytes(ci, 0);
        let best_hyper = grid.mean_megabytes(ci, 2).min(grid.mean_megabytes(ci, 3));
        assert!(
            exp_mb > 1.15 * best_hyper,
            "c index {ci}: exponential should waste >= 15% more bandwidth: \
             exp {exp_mb} vs hyper {best_hyper}"
        );
    }
}

#[test]
fn exponential_significantly_worst_on_bandwidth() {
    let grid = run_pipeline(24, 14);
    let markers: Vec<char> = ModelKind::PAPER_SET.iter().map(|k| k.marker()).collect();
    // At the C = 1000 s grid point the separation is widest.
    let series: Vec<Vec<f64>> = (0..4)
        .map(|mi| grid.cells[2][mi].megabytes.clone())
        .collect();
    let sig = significance_markers(&series, &markers, Direction::LowerIsBetter, 0.05).unwrap();
    // The exponential must not significantly beat anyone, and at least one
    // hyperexponential must significantly beat the exponential.
    assert!(
        sig[0].is_empty(),
        "exponential beat someone on bandwidth: {:?}",
        sig[0]
    );
    assert!(
        sig[2].contains(&'e') || sig[3].contains(&'e'),
        "no hyperexponential significantly beat the exponential: {sig:?}"
    );
}

#[test]
fn confidence_intervals_shrink_with_pool_size() {
    let small = run_pipeline(8, 15);
    let large = run_pipeline(32, 15);
    let hw = |grid: &cycle_harvest::sim::SweepGrid| {
        Summary::ci95(&grid.cells[1][0].efficiency)
            .unwrap()
            .half_width
    };
    assert!(
        hw(&large) < hw(&small),
        "CI should narrow: {} !< {}",
        hw(&large),
        hw(&small)
    );
}

#[test]
fn per_machine_metrics_are_paired_across_models() {
    // Every cell must carry one entry per machine in the same order, or
    // the paired t-tests are meaningless.
    let grid = run_pipeline(10, 16);
    let n = grid.machines.len();
    for row in &grid.cells {
        for cell in row {
            assert_eq!(cell.efficiency.len(), n);
            assert_eq!(cell.megabytes.len(), n);
        }
    }
}
