//! Integration test of the §5.3 validation: the emulated live experiment
//! and the trace simulator must agree on efficiency (within tolerance)
//! when the simulator replays the live system's post-mortem occupancy
//! durations — the paper's own consistency check, run automatically.

use cycle_harvest::condor::{run_experiment, ExperimentConfig};
use cycle_harvest::dist::fit::fit_model;
use cycle_harvest::dist::ModelKind;
use cycle_harvest::markov::CheckpointCosts;
use cycle_harvest::sim::{simulate_trace, CachedPolicy, SimConfig};

fn live_result() -> cycle_harvest::condor::ExperimentResult {
    let mut config = ExperimentConfig::campus();
    config.machines = 24;
    config.streams = 2;
    config.window = 1.5 * 86_400.0;
    config.seed = 2005;
    run_experiment(&config).expect("live experiment")
}

#[test]
fn live_and_postmortem_sim_agree_for_memoryless_models() {
    let live = live_result();
    let exp_summary = &live.summaries[0];
    assert_eq!(exp_summary.model, ModelKind::Exponential);
    assert!(
        exp_summary.sample_size >= 30,
        "need samples, got {}",
        exp_summary.sample_size
    );

    let durations: Vec<f64> = live
        .runs
        .iter()
        .filter(|r| r.model == ModelKind::Exponential && r.occupied_seconds() > 0.0)
        .map(|r| r.occupied_seconds())
        .collect();
    let c = exp_summary.mean_transfer_seconds;
    let (train, test) = durations.split_at(25);
    let fit = fit_model(ModelKind::Exponential, train).expect("fit");
    let max_age = test.iter().cloned().fold(0.0f64, f64::max);
    let policy = CachedPolicy::new(fit, CheckpointCosts::symmetric(c), max_age);
    let sim = simulate_trace(test, &policy, &SimConfig::paper(c)).expect("sim");

    let diff = (sim.efficiency() - exp_summary.avg_efficiency).abs();
    assert!(
        diff < 0.12,
        "live {:.3} vs sim {:.3}: discrepancy {diff:.3} too large",
        exp_summary.avg_efficiency,
        sim.efficiency()
    );
}

#[test]
fn live_experiment_conserves_run_time() {
    let live = live_result();
    for r in &live.runs {
        // Committed work + transfers can never exceed occupancy.
        let transfer_time: f64 = r.transfers.iter().map(|t| t.elapsed).sum();
        assert!(
            r.useful_seconds() + transfer_time <= r.occupied_seconds() + 1e-6,
            "run on {} overflows its occupancy",
            r.machine
        );
    }
}

#[test]
fn live_bandwidth_ordering_matches_simulation_headline() {
    // Exponential must move at least as many megabytes per hour as the
    // most parsimonious hyperexponential.
    let live = live_result();
    let exp_rate = live.summaries[0].megabytes_per_hour;
    let h2_rate = live.summaries[2].megabytes_per_hour;
    let h3_rate = live.summaries[3].megabytes_per_hour;
    let best_hyper = h2_rate.min(h3_rate);
    assert!(
        exp_rate > best_hyper,
        "exponential MB/h {exp_rate} should exceed best hyperexponential {best_hyper}"
    );
}

#[test]
fn wide_area_lowers_efficiency() {
    let mut campus_cfg = ExperimentConfig::campus();
    campus_cfg.machines = 16;
    campus_cfg.streams = 1;
    campus_cfg.window = 86_400.0;
    campus_cfg.seed = 7;
    let mut wide_cfg = campus_cfg.clone();
    wide_cfg.path = cycle_harvest::net::NetworkPath::wide_area();

    let campus = run_experiment(&campus_cfg).expect("campus");
    let wide = run_experiment(&wide_cfg).expect("wide");
    let avg = |r: &cycle_harvest::condor::ExperimentResult| {
        r.summaries.iter().map(|s| s.avg_efficiency).sum::<f64>() / 4.0
    };
    assert!(
        avg(&wide) < avg(&campus),
        "wide-area efficiency {:.3} should be below campus {:.3}",
        avg(&wide),
        avg(&campus)
    );
}
