//! Optimality integration tests: the model-driven `T_opt` policy must
//! beat (or tie) fixed-interval baselines in *simulation over ground
//! truth*, not just analytically — closing the loop between the Markov
//! model and the discrete-event simulator.

use cycle_harvest::dist::{AvailabilityModel, FittedModel, Weibull};
use cycle_harvest::markov::CheckpointCosts;
use cycle_harvest::sim::{simulate_trace, CachedPolicy, FixedIntervalPolicy, SimConfig};
use rand::SeedableRng;

fn weibull_trace(n: usize, seed: u64) -> Vec<f64> {
    let truth = Weibull::paper_exemplar();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| truth.sample(&mut rng).max(1.0)).collect()
}

#[test]
fn t_opt_policy_beats_naive_fixed_intervals() {
    let durations = weibull_trace(3_000, 1);
    let c = 250.0;
    let config = SimConfig::paper(c);
    let max_age = durations.iter().cloned().fold(0.0f64, f64::max);

    // Oracle policy: the true distribution.
    let truth = FittedModel::Weibull(Weibull::paper_exemplar());
    let oracle = CachedPolicy::new(truth, CheckpointCosts::symmetric(c), max_age);
    let oracle_eff = simulate_trace(&durations, &oracle, &config)
        .unwrap()
        .efficiency();

    // Naive baselines: checkpoint way too often / way too rarely.
    for fixed in [60.0, 30_000.0] {
        let baseline = FixedIntervalPolicy { interval: fixed };
        let eff = simulate_trace(&durations, &baseline, &config)
            .unwrap()
            .efficiency();
        assert!(
            oracle_eff > eff,
            "T_opt policy ({oracle_eff:.3}) should beat fixed {fixed} s ({eff:.3})"
        );
    }
}

#[test]
fn t_opt_policy_is_near_best_fixed_interval() {
    // Sweep fixed intervals; the aperiodic T_opt policy should be within
    // a few percent of the best *constant* policy (and usually above it,
    // since it adapts to age).
    let durations = weibull_trace(2_000, 2);
    let c = 110.0;
    let config = SimConfig::paper(c);
    let max_age = durations.iter().cloned().fold(0.0f64, f64::max);

    let truth = FittedModel::Weibull(Weibull::paper_exemplar());
    let oracle = CachedPolicy::new(truth, CheckpointCosts::symmetric(c), max_age);
    let oracle_eff = simulate_trace(&durations, &oracle, &config)
        .unwrap()
        .efficiency();

    let mut best_fixed: f64 = 0.0;
    for factor in 1..40 {
        let fixed = FixedIntervalPolicy {
            interval: 150.0 * factor as f64,
        };
        let eff = simulate_trace(&durations, &fixed, &config)
            .unwrap()
            .efficiency();
        best_fixed = best_fixed.max(eff);
    }
    assert!(
        oracle_eff > best_fixed - 0.02,
        "T_opt ({oracle_eff:.3}) should be within 0.02 of the best fixed policy \
         ({best_fixed:.3})"
    );
}

#[test]
fn fitted_policy_close_to_oracle() {
    // Fitting on a 25-duration prefix (the paper's training size) should
    // cost only a few points of efficiency versus knowing the truth.
    let durations = weibull_trace(2_000, 3);
    let c = 500.0;
    let config = SimConfig::paper(c);
    let (train, test) = durations.split_at(25);
    let max_age = test.iter().cloned().fold(0.0f64, f64::max);

    let truth = FittedModel::Weibull(Weibull::paper_exemplar());
    let oracle = CachedPolicy::new(truth, CheckpointCosts::symmetric(c), max_age);
    let oracle_eff = simulate_trace(test, &oracle, &config).unwrap().efficiency();

    let fitted =
        cycle_harvest::dist::fit::fit_model(cycle_harvest::dist::ModelKind::Weibull, train)
            .unwrap();
    let policy = CachedPolicy::new(fitted, CheckpointCosts::symmetric(c), max_age);
    let fitted_eff = simulate_trace(test, &policy, &config).unwrap().efficiency();

    assert!(
        fitted_eff > oracle_eff - 0.05,
        "25-sample fit ({fitted_eff:.3}) should be within 0.05 of oracle ({oracle_eff:.3})"
    );
}

#[test]
fn simulated_efficiency_converges_to_analytic_prediction() {
    // Steady-state check at a *fixed* T on exponential ground truth: the
    // simulator's efficiency must converge to T/Γ(T) because every
    // segment is statistically identical and memoryless.
    use cycle_harvest::dist::Exponential;
    use cycle_harvest::markov::VaidyaModel;

    let truth = Exponential::from_mean(3_600.0).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let durations: Vec<f64> = (0..60_000)
        .map(|_| truth.sample(&mut rng).max(1e-3))
        .collect();
    let c = 110.0;
    let t = 900.0;

    let model = VaidyaModel::new(&truth, CheckpointCosts::symmetric(c)).unwrap();
    let analytic = model.efficiency(t, 0.0);

    let policy = FixedIntervalPolicy { interval: t };
    let sim = simulate_trace(&durations, &policy, &SimConfig::paper(c)).unwrap();
    let diff = (sim.efficiency() - analytic).abs();
    assert!(
        diff < 0.02,
        "simulated {:.4} vs analytic {:.4} (diff {diff:.4})",
        sim.efficiency(),
        analytic
    );
}

#[test]
fn moment_fit_schedules_are_usable() {
    // The closed-form two-moment H2 fit (the fast path) produces sane
    // schedules even though it ignores everything past the second moment.
    use cycle_harvest::dist::fit::fit_hyperexp2_moments;
    use cycle_harvest::markov::VaidyaModel;
    let durations = weibull_trace(500, 9);
    let fit = fit_hyperexp2_moments(&durations).unwrap();
    let m = VaidyaModel::new(&fit, CheckpointCosts::symmetric(110.0)).unwrap();
    let opt = m.optimal_interval(0.0).unwrap();
    assert!(opt.work_seconds > 0.0 && opt.work_seconds.is_finite());
    assert!(opt.efficiency > 0.2, "eff {}", opt.efficiency);
}
