//! Cross-validation of the analytic steady-state predictor against the
//! trace simulator: on traces drawn from the *same* distribution the
//! schedule was computed from, the renewal-reward prediction and the
//! discrete-event simulation must agree on both efficiency and network
//! load.

use cycle_harvest::dist::{AvailabilityModel, Exponential, FittedModel, Weibull};
use cycle_harvest::markov::{predict_steady_state, CheckpointCosts, VaidyaModel};
use cycle_harvest::sim::{simulate_trace, CachedPolicy, SimConfig};
use rand::SeedableRng;

fn cross_validate(dist: &dyn AvailabilityModel, fit: FittedModel, c: f64, seed: u64) {
    let costs = CheckpointCosts::symmetric(c);
    let vaidya = VaidyaModel::new(fit.as_model(), costs).unwrap();
    let predicted = predict_steady_state(&vaidya, fit.as_model(), 500.0).unwrap();

    // Simulate on 40k segments drawn from the same distribution.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let durations: Vec<f64> = (0..40_000)
        .map(|_| dist.sample(&mut rng).max(1e-3))
        .collect();
    let max_age = durations.iter().cloned().fold(0.0f64, f64::max);
    let policy = CachedPolicy::new(fit, costs, max_age);
    let sim = simulate_trace(&durations, &policy, &SimConfig::paper(c)).unwrap();

    let eff_err = (predicted.efficiency - sim.efficiency()).abs();
    assert!(
        eff_err < 0.03,
        "efficiency: predicted {:.4} vs simulated {:.4}",
        predicted.efficiency,
        sim.efficiency()
    );

    let sim_mb_per_hour = sim.megabytes_per_hour();
    let mb_rel = (predicted.megabytes_per_hour - sim_mb_per_hour).abs() / sim_mb_per_hour;
    assert!(
        mb_rel < 0.08,
        "MB/h: predicted {:.1} vs simulated {:.1} (rel {mb_rel:.3})",
        predicted.megabytes_per_hour,
        sim_mb_per_hour
    );
}

#[test]
fn prediction_matches_simulation_exponential() {
    let d = Exponential::from_mean(3_600.0).unwrap();
    cross_validate(&d, FittedModel::Exponential(d), 110.0, 1);
}

#[test]
fn prediction_matches_simulation_exponential_large_c() {
    let d = Exponential::from_mean(3_600.0).unwrap();
    cross_validate(&d, FittedModel::Exponential(d), 750.0, 2);
}

#[test]
fn prediction_matches_simulation_weibull() {
    let d = Weibull::paper_exemplar();
    cross_validate(&d, FittedModel::Weibull(d), 110.0, 3);
}

#[test]
fn prediction_matches_simulation_weibull_large_c() {
    let d = Weibull::paper_exemplar();
    cross_validate(&d, FittedModel::Weibull(d), 500.0, 4);
}

#[test]
fn prediction_matches_simulation_hyperexp() {
    let d =
        cycle_harvest::dist::HyperExponential::new(&[(0.7, 1.0 / 300.0), (0.3, 1.0 / 30_000.0)])
            .unwrap();
    cross_validate(&d, FittedModel::HyperExponential(d.clone()), 250.0, 5);
}

#[test]
fn prediction_reproduces_table3_ordering_analytically() {
    // The paper's headline — exponential moves the most data — falls out
    // of the analytic predictor alone (no simulation): fit all four
    // models to the same heavy-tailed training data and predict.
    use cycle_harvest::dist::fit::fit_model;
    use cycle_harvest::dist::ModelKind;

    let truth = Weibull::paper_exemplar();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
    let train: Vec<f64> = (0..2_000).map(|_| truth.sample(&mut rng)).collect();

    let c = 500.0;
    let mut rates = Vec::new();
    for kind in ModelKind::PAPER_SET {
        let fit = fit_model(kind, &train).unwrap();
        let vaidya = VaidyaModel::new(fit.as_model(), CheckpointCosts::symmetric(c)).unwrap();
        // Evaluate the load each schedule would put on the *true* pool:
        // schedule from the fit, segment distribution = truth.
        let policy_pred = predict_steady_state(&vaidya, fit.as_model(), 500.0).unwrap();
        rates.push((kind, policy_pred.megabytes_per_hour));
    }
    let exp_rate = rates[0].1;
    for (kind, rate) in &rates[1..] {
        assert!(
            *rate < exp_rate,
            "{kind:?} should predict less load than exponential: {rate} vs {exp_rate}"
        );
    }
}
