//! Integration test of the production path: record history → persist →
//! reload → fit → schedule, plus determinism and cost-update behaviour.

use cycle_harvest::core::{CheckpointScheduler, CostEstimator, HistoryStore, SchedulerConfig};
use cycle_harvest::dist::ModelKind;
use cycle_harvest::trace::io::{pool_from_json, pool_to_json};
use cycle_harvest::trace::synthetic::{generate_pool, PoolConfig};
use cycle_harvest::trace::MachineId;

#[test]
fn record_persist_reload_schedule() {
    // Record a pool's observations into the store.
    let pool = generate_pool(&PoolConfig::small(4, 80, 33)).as_machine_pool();
    let mut store = HistoryStore::new();
    store.import_pool(&pool);

    // Persist and reload through JSON.
    let json = pool_to_json(&store.to_pool()).unwrap();
    let reloaded = pool_from_json(&json).unwrap();
    let mut store2 = HistoryStore::new();
    store2.import_pool(&reloaded);

    // Fit + schedule from both stores must agree exactly.
    let machine = pool.traces()[0].machine;
    let cfg = SchedulerConfig {
        checkpoint_cost: 110.0,
        recovery_cost: 110.0,
        ..Default::default()
    };
    let s1 = store
        .scheduler_for(machine, ModelKind::Weibull, cfg)
        .unwrap();
    let s2 = store2
        .scheduler_for(machine, ModelKind::Weibull, cfg)
        .unwrap();
    let t1 = s1.next_interval(300.0).unwrap().work_seconds;
    let t2 = s2.next_interval(300.0).unwrap().work_seconds;
    assert_eq!(t1, t2, "persistence must not perturb schedules");
}

#[test]
fn scheduler_serde_preserves_schedules() {
    let pool = generate_pool(&PoolConfig::small(1, 120, 44)).as_machine_pool();
    let durations = pool.traces()[0].durations();
    let s = CheckpointScheduler::fit(
        &durations,
        ModelKind::HyperExponential { phases: 2 },
        SchedulerConfig::default(),
    )
    .unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: CheckpointScheduler = serde_json::from_str(&json).unwrap();
    let a = s.schedule(0.0, 50_000.0, 8).unwrap();
    let b = back.schedule(0.0, 50_000.0, 8).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.entries().iter().zip(b.entries()) {
        assert!((x.interval.work_seconds - y.interval.work_seconds).abs() < 1e-9);
    }
}

#[test]
fn estimator_feeds_scheduler() {
    // Live loop: measure transfers, update the scheduler's costs, observe
    // the interval respond.
    let pool = generate_pool(&PoolConfig::small(1, 100, 55)).as_machine_pool();
    let durations = pool.traces()[0].durations();
    let mut scheduler =
        CheckpointScheduler::fit(&durations, ModelKind::Weibull, SchedulerConfig::default())
            .unwrap();

    let mut estimator = CostEstimator::new(110.0);
    for c in [100.0, 115.0, 108.0, 112.0] {
        estimator.observe_checkpoint(c);
    }
    scheduler
        .update_costs(estimator.checkpoint_cost(), estimator.recovery_cost())
        .unwrap();
    let campus_t = scheduler.next_interval(0.0).unwrap().work_seconds;

    // Path degrades to wide-area speeds.
    for c in [480.0, 470.0, 465.0, 490.0, 475.0, 471.0, 484.0] {
        estimator.observe_checkpoint(c);
    }
    scheduler
        .update_costs(estimator.checkpoint_cost(), estimator.recovery_cost())
        .unwrap();
    let wan_t = scheduler.next_interval(0.0).unwrap().work_seconds;

    assert!(
        wan_t > campus_t,
        "wide-area costs should lengthen intervals: {campus_t} vs {wan_t}"
    );
}

#[test]
fn store_accumulates_across_sessions() {
    let mut store = HistoryStore::new();
    let m = MachineId(5);
    for i in 0..30 {
        store.record(m, i as f64 * 10_000.0, 500.0 + 100.0 * (i % 7) as f64);
    }
    assert_eq!(store.observation_count(m), 30);
    let s = store
        .scheduler_for(m, ModelKind::Exponential, SchedulerConfig::default())
        .unwrap();
    assert!(s.next_interval(0.0).unwrap().work_seconds > 0.0);
}
