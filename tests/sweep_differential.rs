//! Differential regression test for the flattened pool sweep: a naive
//! serial reference (nested `C → model → machine` loops, per-cell max-age
//! rescans) must reproduce the optimized full-width fan-out cell by cell.
//!
//! Two tolerances, on purpose:
//!
//! * Against the **serial warm-fill** reference every per-cell computation
//!   is identical code, so the flat fan-out and index-aligned reduction
//!   must agree to 1e-9 relative (in fact bitwise) — this isolates the
//!   orchestration restructure from any numerical effect.
//! * Against the **cold-search** reference (the pre-optimization search at
//!   every grid point) the warm-started fill can only agree to the
//!   optimizer's plateau width: near the flat minimum of Γ/T the objective
//!   is numerically constant over ~1e-7 in ln T, so two different search
//!   paths land within ~1e-8..1e-6 of each other, never 1e-9. That bound
//!   checks the warm-start itself.

use cycle_harvest::sim::{
    prepare_experiments, sweep_paper_grid, sweep_paper_grid_reference, sweep_paper_grid_serial,
    MachineExperiment, SweepGrid,
};
use cycle_harvest::trace::synthetic::{generate_pool, PoolConfig};

fn six_machine_pool() -> Vec<MachineExperiment> {
    let pool = generate_pool(&PoolConfig::small(6, 80, 42)).as_machine_pool();
    let experiments = prepare_experiments(&pool, 25);
    assert!(
        experiments.len() >= 4,
        "pool too small to exercise the fan-out"
    );
    experiments
}

fn max_rel_dev(a: &SweepGrid, b: &SweepGrid) -> (f64, f64) {
    assert_eq!(a.cells.len(), b.cells.len());
    let rel = |x: f64, y: f64| (x - y).abs() / x.abs().max(y.abs()).max(1e-300);
    let (mut d_eff, mut d_mb) = (0.0f64, 0.0f64);
    for (row_a, row_b) in a.cells.iter().zip(&b.cells) {
        assert_eq!(row_a.len(), row_b.len());
        for (ca, cb) in row_a.iter().zip(row_b) {
            assert_eq!(ca.efficiency.len(), cb.efficiency.len());
            for (&x, &y) in ca.efficiency.iter().zip(&cb.efficiency) {
                d_eff = d_eff.max(rel(x, y));
            }
            for (&x, &y) in ca.megabytes.iter().zip(&cb.megabytes) {
                d_mb = d_mb.max(rel(x, y));
            }
        }
    }
    (d_eff, d_mb)
}

#[test]
fn flat_fan_out_matches_serial_reference_exactly() {
    let experiments = six_machine_pool();
    let c_values = [50.0, 250.0, 750.0, 1500.0];
    let optimized = sweep_paper_grid(&experiments, &c_values, 500.0);
    let serial = sweep_paper_grid_serial(&experiments, &c_values, 500.0);

    assert_eq!(optimized.c_values, serial.c_values);
    assert_eq!(optimized.models, serial.models);
    assert_eq!(optimized.machines, serial.machines);
    let (d_eff, d_mb) = max_rel_dev(&optimized, &serial);
    assert!(
        d_eff < 1e-9 && d_mb < 1e-9,
        "flat fan-out diverged from serial order: eff {d_eff:.3e}, MB {d_mb:.3e}"
    );

    // The reduction must also absorb machines in the serial order, so the
    // aggregates agree bitwise, not just the per-machine vectors.
    for (row_a, row_b) in optimized.cells.iter().zip(&serial.cells) {
        for (ca, cb) in row_a.iter().zip(row_b) {
            assert_eq!(ca.aggregate.useful_seconds, cb.aggregate.useful_seconds);
            assert_eq!(ca.aggregate.megabytes, cb.aggregate.megabytes);
        }
    }
}

#[test]
fn warm_started_fill_tracks_cold_search() {
    // The warm and cold T_opt tables agree to the optimizer plateau
    // (~1e-8 relative; asserted directly in chs-sim's policy tests), but
    // the discrete-event simulation is *discontinuous* in T: a sub-ppm
    // shift in an interval can flip whether a checkpoint commits before a
    // failure, changing a single machine's efficiency at the percent
    // level. Both policies are equally optimal, so the comparison that is
    // meaningful here is at the cell-mean level with an event-flip-sized
    // tolerance — not 1e-9, which only the identical-numerics serial path
    // above can satisfy.
    let experiments = six_machine_pool();
    let c_values = [100.0, 1000.0];
    let optimized = sweep_paper_grid(&experiments, &c_values, 500.0);
    let cold = sweep_paper_grid_reference(&experiments, &c_values, 500.0);

    for ci in 0..c_values.len() {
        for mi in 0..optimized.models.len() {
            let (ew, ec) = (
                optimized.mean_efficiency(ci, mi),
                cold.mean_efficiency(ci, mi),
            );
            assert!(
                (ew - ec).abs() < 0.02,
                "cell ({ci},{mi}): warm mean efficiency {ew:.4} vs cold {ec:.4}"
            );
            let (mw, mc) = (
                optimized.mean_megabytes(ci, mi),
                cold.mean_megabytes(ci, mi),
            );
            assert!(
                (mw - mc).abs() / mc.max(1e-300) < 0.10,
                "cell ({ci},{mi}): warm mean MB {mw:.1} vs cold {mc:.1}"
            );
        }
    }
}
