//! Offline stand-in for `criterion`: a small wall-clock micro-benchmark
//! harness with the same call surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `sample_size`).
//!
//! Methodology is deliberately simple: a warm-up pass sizes the batch so
//! one sample takes ≳1 ms, then `sample_size` samples are timed and the
//! median per-iteration time is reported to stdout. No statistics
//! beyond min/median/max, no plots, no baselines.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fit", n)` → `fit/<n>`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    batch: u64,
    samples: usize,
    /// Median ns/iter of the last run (for tests).
    last_median_ns: f64,
}

impl Bencher {
    /// Time `f`, batching iterations so each sample is long enough to
    /// measure reliably.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: find a batch size taking ≳1 ms, capped to keep total
        // runtime bounded.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
        self.batch = batch;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.last_median_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            batch: 1,
            samples: self.sample_size,
            last_median_ns: 0.0,
        };
        f(&mut bencher);
        println!(
            "{}/{}: {} ns/iter (batch {})",
            self.name,
            id.name,
            format_ns(bencher.last_median_ns),
            bencher.batch
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// End the group (report-flushing no-op here).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3e}", ns)
    } else if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// Define a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let data = vec![1.0f64; 128];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<f64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("fit", 500);
        assert_eq!(id.name, "fit/500");
    }
}
