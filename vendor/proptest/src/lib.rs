//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! range strategies over numeric types, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! No shrinking: a failing case panics with its case number, the values
//! bound for that case (if printable), and the assertion message. Case
//! generation is deterministic per test name, so failures reproduce.

#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from `len`, elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec strategy: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Alias so `prop::collection::vec(..)` resolves, mirroring real
    /// proptest's prelude.
    pub use crate as prop;
}

/// The macro behind every property test: runs each `fn` body over
/// `config.cases` deterministic samples of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => { $(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases * 20 {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} attempts)",
                        stringify!($name), __ran, __attempts
                    );
                }
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                let __case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}, "),*),
                    $(&$arg),*
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => { __ran += 1; }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\n  inputs: {}",
                            stringify!($name), __ran, __msg, __case_desc
                        );
                    }
                }
            }
        }
    )* };
}

/// Assert inside a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*))
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.0, n in 3usize..17) {
            prop_assert!((1.5..9.0).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_strategy_lengths(xs in prop::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 8);
            for x in &xs {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.25);
            prop_assert!(x > 0.25);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let s = 0.0f64..1.0;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a).to_bits(), s.sample(&mut b).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        always_fails();
    }
}
