//! Value-generation strategies: numeric ranges and anything composed of
//! them.

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (std::ops::Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! inclusive_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

inclusive_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy returning one fixed value (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
