//! Deterministic case generation and the config/error types the
//! `proptest!` macro uses.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases (the form every test in this workspace uses).
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default.
        Self { cases: 256 }
    }
}

/// Why a property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!` failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not count.
    Reject(&'static str),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(c) => write!(f, "rejected: {c}"),
        }
    }
}

/// The generator driving strategies: SplitMix64 seeded from the test
/// name, so every test has its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
