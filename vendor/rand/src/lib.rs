//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`] (with `seed_from_u64`), and the [`Rng`] extension
//! trait providing `gen`, `gen_range`, and `gen_bool`. Stream values are
//! deterministic given a seed but are *not* bit-compatible with the real
//! `rand` crate — every consumer in this workspace only relies on
//! seed-reproducibility, never on specific stream values.

#![deny(missing_docs)]

/// The core of a random number generator: a source of uniformly
/// distributed raw bits.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64 step, used to expand a `u64` seed into seed material
/// (same expansion idea as `rand`'s `seed_from_u64`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`]
/// (stand-in for `rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types usable as the bound of [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::standard_sample(rng);
        let v = lo + (hi - lo) * u;
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo reduction; the bias is < span/2^64, irrelevant for
                // the simulation workloads this stand-in serves.
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferable type (`f64` → uniform `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    use super::*;

    /// A small, fast xoshiro256** generator (stand-in for `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0f64..7.0);
            assert!((3.0..7.0).contains(&x));
            let n = rng.gen_range(2usize..12);
            assert!((2..12).contains(&n));
        }
    }

    #[test]
    fn gen_f64_mean_near_half() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rngcore_usable_via_rng() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
