//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the workspace's vendored [`rand`] traits.
//!
//! The keystream is real ChaCha with 8 rounds (RFC 7539 quarter-round
//! over a 16-word state), seeded with a 256-bit key, zero nonce, and a
//! 64-bit block counter. Output word order is *not* guaranteed to match
//! the upstream `rand_chacha` crate; consumers in this workspace rely on
//! seed-determinism only.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, the workspace's deterministic workhorse RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Constant + key + counter + nonce words.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit little-endian block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // counter (12–13) and nonce (14–15) start at zero.
        let mut rng = Self {
            state,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2_005);
        let mut b = ChaCha8Rng::seed_from_u64(2_005);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 100k uniform draws must sit near 0.5 — catches broken
        // keystream mixing.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn bytes_are_not_stuck() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        let distinct: std::collections::HashSet<u8> = buf.iter().copied().collect();
        assert!(distinct.len() > 16);
    }
}
