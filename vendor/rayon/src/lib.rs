//! Offline stand-in for `rayon`: eager data-parallel iterators over
//! `std::thread::scope` with an atomic-counter work queue.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the rayon surface it uses: `par_iter` / `into_par_iter`, the
//! `map`/`filter_map`/`filter`/`enumerate`/`for_each`/`sum`/`collect`
//! adaptors, and `ThreadPoolBuilder::num_threads(..).build().install(..)`.
//!
//! Unlike real rayon the adaptors are **eager**: each stage materializes
//! its results (in input order) before the next runs. Scheduling is a
//! shared atomic index, so uneven per-item cost — exactly the sweep's
//! profile, where old machines cost far more than young ones — load
//! balances across however many cores the host exposes.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a caller needs in scope for `.par_iter()` chains.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

std::thread_local! {
    static POOL_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The number of worker threads parallel operations will use on this
/// thread: an installed pool's size if inside [`ThreadPool::install`],
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(1)
    })
}

/// Run `f(item)` for every item, in parallel, preserving input order in
/// the output. The core primitive behind every adaptor.
fn par_map_vec<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: F) -> Vec<U> {
    let len = items.len();
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("worker panicked holding an item slot")
                        .take()
                        .expect("each slot is drained exactly once");
                    local.push((i, f(item)));
                }
                done.lock()
                    .expect("worker panicked holding the result sink")
                    .append(&mut local);
            });
        }
    });
    let mut indexed = done.into_inner().expect("scope joined all workers");
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, u)| u).collect()
}

/// An eager, order-preserving parallel iterator: the result of
/// `par_iter()` / `into_par_iter()` and of every adaptor.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Apply `f` in parallel, keeping only `Some` results.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_map_vec(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Keep items satisfying the predicate (evaluated in parallel).
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        ParIter {
            items: par_map_vec(self.items, |t| if f(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every item in parallel, discarding results.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Gather results into any `FromIterator` collection, in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Fold-reduce with an identity, mirroring rayon's `reduce`.
    pub fn reduce<ID: Fn() -> T + Sync, F: Fn(T, T) -> T + Sync>(self, identity: ID, f: F) -> T {
        self.items.into_iter().fold(identity(), f)
    }

    /// Hint accepted for API compatibility; scheduling is per-item here.
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Number of items (the iterator is materialized, so this is exact).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// By-value conversion into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// By-reference conversion (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type produced (a shared reference).
    type Item: Send + 'data;
    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for pool construction (infallible here, kept for API shape).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` worker threads (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        })
    }
}

/// A sized "pool": parallel operations run inside [`ThreadPool::install`]
/// use at most its thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing parallel operations
    /// on the current thread.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("join: right side panicked"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<i64> = (0..1_000).collect();
        let doubled: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order() {
        let v: Vec<u64> = (0..100).collect();
        let evens: Vec<u64> = v
            .into_par_iter()
            .filter_map(|x| if x % 2 == 0 { Some(x) } else { None })
            .collect();
        assert_eq!(evens, (0..100).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn install_caps_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 1);
        assert_eq!(pool.current_num_threads(), 1);
    }

    #[test]
    fn install_restores_on_exit() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| ());
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn nested_adaptors() {
        let v: Vec<usize> = (0..64).collect();
        let total: usize = v.par_iter().map(|&x| x).filter(|&x| x < 32).sum();
        assert_eq!(total, (0..32).sum());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 50);
        assert_eq!(squares[7], 49);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let v: Vec<u32> = (0..8).collect();
        let _: Vec<u32> = v
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
            .collect();
    }
}
