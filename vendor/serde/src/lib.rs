//! Offline stand-in for `serde`.
//!
//! Instead of real serde's visitor-based `Serializer`/`Deserializer`
//! machinery, this vendored stub round-trips everything through a JSON
//! [`value::Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] reads back out of one. The paired `serde_json` stub
//! handles text. The derive macros (re-exported from the vendored
//! `serde_derive`) generate the same externally-tagged representation as
//! real serde's defaults, so JSON written by this workspace looks like
//! what the real crates would produce.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{DeError, Value};

/// Render `self` into a JSON value tree.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    /// Parse from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    // Real serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_float!(f64, f32);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range")))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) if *x <= i64::MAX as u64 => *x as i64,
                    Value::F64(x) if x.fract() == 0.0 => *x as i64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range")))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for &'static str {
    /// Mirrors real serde's borrowed-str impl as closely as a value-tree
    /// model allows: the string must outlive the value, so it is leaked.
    /// Only `&'static str` fields in config-sized structs use this.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!(
                "expected 2-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!(
                "expected 3-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 4 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
                D::from_value(&items[3])?,
            )),
            other => Err(DeError::new(format!(
                "expected 4-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

/// Map keys: anything that can render to / parse from a JSON object key.
pub trait MapKey: Sized {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

/// Blanket bridge: any serializable type whose value form is a string or
/// integer can key a map (this covers strings, integers, and integer
/// newtypes like trace machine ids — the same set `serde_json` accepts).
impl<T: Serialize + Deserialize> MapKey for T {
    fn to_key(&self) -> String {
        match self.to_value() {
            Value::String(s) => s,
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            other => panic!("unsupported map key kind: {}", other.kind()),
        }
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        if let Ok(v) = T::from_value(&Value::String(s.to_string())) {
            return Ok(v);
        }
        if let Ok(n) = s.parse::<u64>() {
            if let Ok(v) = T::from_value(&Value::U64(n)) {
                return Ok(v);
            }
        }
        if let Ok(n) = s.parse::<i64>() {
            if let Ok(v) = T::from_value(&Value::I64(n)) {
                return Ok(v);
            }
        }
        Err(DeError::new(format!("unparseable map key {s:?}")))
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for std::collections::HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(f64::from_value(&3.25f64.to_value()).unwrap(), 3.25);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn nan_serializes_to_null_and_back() {
        let v = f64::NAN.to_value();
        // Value::F64 carries the NaN; the JSON writer is responsible for
        // rendering it as null. Null must also deserialize as NaN.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        let _ = v;
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let xs = vec![1.0f64, 2.5, -3.0];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
        let some: Option<u64> = Some(5);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (0.5f64, 9u64);
        assert_eq!(<(f64, u64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(bool::from_value(&Value::F64(1.0)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
    }
}
