//! The JSON value tree the vendored serde stub serializes through, plus
//! the helpers the derive macros call.

use crate::Deserialize;

/// A JSON value. Objects preserve insertion order (`Vec` of pairs) so
/// serialized structs keep their field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A float (also carries non-finite values; the writer emits `null`).
    F64(f64),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::F64(_) | Value::I64(_) | Value::U64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up an object entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Create with a message.
    pub fn new(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Derive-macro helper: extract and deserialize a named struct field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => match v.get(name) {
            Some(inner) => {
                T::from_value(inner).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
            }
            None => Err(DeError::new(format!("missing field `{name}`"))),
        },
        other => Err(DeError::new(format!(
            "expected object with field `{name}`, found {}",
            other.kind()
        ))),
    }
}

/// Derive-macro helper: extract and deserialize a tuple element.
pub fn element<T: Deserialize>(v: &Value, index: usize) -> Result<T, DeError> {
    match v {
        Value::Array(items) => match items.get(index) {
            Some(inner) => {
                T::from_value(inner).map_err(|e| DeError::new(format!("element {index}: {e}")))
            }
            None => Err(DeError::new(format!(
                "missing element {index} (array has {})",
                items.len()
            ))),
        },
        other => Err(DeError::new(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}
