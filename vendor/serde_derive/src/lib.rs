//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's vendored serde stand-in.
//!
//! No `syn`/`quote` (crates.io is unreachable), so the item is parsed
//! directly from the `proc_macro` token stream. Supported shapes — the
//! only ones this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider ones as
//!   arrays),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching real serde's default representation).
//!
//! Generic items and `#[serde(..)]` attributes are intentionally not
//! supported and panic with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Split the tokens of a brace/paren group into comma-separated field
/// chunks, respecting `<...>` nesting in types (commas inside angle
/// brackets do not split).
fn split_fields(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Drop leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...) from a token chunk.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` then `[...]` — skip both.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// First identifier of a named-field chunk (the field name).
fn field_name(tokens: &[TokenTree]) -> String {
    let rest = strip_attrs_and_vis(tokens);
    match rest.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected field name, found {other:?}"),
    }
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_fields(group_tokens)
        .iter()
        .map(|chunk| field_name(chunk))
        .collect()
}

fn parse_variants(group_tokens: Vec<TokenTree>) -> Vec<Variant> {
    split_fields(group_tokens)
        .into_iter()
        .map(|chunk| {
            let rest = strip_attrs_and_vis(&chunk);
            let name = match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            let shape = match rest.get(1) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream().into_iter().collect()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(split_fields(g.stream().into_iter().collect()).len())
                }
                other => panic!(
                    "serde_derive: unsupported tokens after variant {name}: {other:?} \
                     (discriminants are not supported)"
                ),
            };
            Variant { name, shape }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = strip_attrs_and_vis(&tokens);
    let mut it = rest.iter();
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    let next = it.next();
    if let Some(TokenTree::Punct(p)) = next {
        if p.as_char() == '<' {
            panic!("serde_derive: generic item `{name}` is not supported by the vendored stub");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match next {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(split_fields(g.stream().into_iter().collect()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match next {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream().into_iter().collect()))
            }
            other => panic!("serde_derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// `#[derive(Serialize)]` — implements `serde::Serialize` by building a
/// `serde::value::Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, \
                 ::serde::value::Value)> = ::std::vec::Vec::new();\n{pushes}\
                 ::serde::value::Value::Object(__obj)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                elems.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::value::Value::String(\
                             \"{vn}\".to_string()),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__x0) => ::serde::value::Value::Object(::std::vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::to_value(__x0))]),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::Object(::std::vec![(\
                                 \"{vn}\".to_string(), ::serde::value::Value::Array(\
                                 ::std::vec![{}]))]),\n",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::value::Value::Object(\
                                 ::std::vec![(\"{vn}\".to_string(), \
                                 ::serde::value::Value::Object(::std::vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]` — implements `serde::Deserialize` by reading
/// back the `Value` tree produced by the paired `Serialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::value::field(__v, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::value::element(__v, {i})?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(1) => format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::value::element(__inner, {i})?"))
                                .collect();
                            format!(
                                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}({})),\n",
                                inits.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::value::field(__inner, \"{f}\")?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::value::Value::String(__s) => {{\n\
                 match __s.as_str() {{\n{unit_arms}\
                 _ => {{}}\n}}\n\
                 ::std::result::Result::Err(::serde::value::DeError::new(\
                 ::std::format!(\"unknown {name} variant {{__s}}\")))\n\
                 }}\n\
                 ::serde::value::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 _ => {{}}\n}}\n\
                 ::std::result::Result::Err(::serde::value::DeError::new(\
                 ::std::format!(\"unknown {name} variant {{__tag}}\")))\n\
                 }}\n\
                 _ => ::std::result::Result::Err(::serde::value::DeError::new(\
                 \"expected {name} enum representation\".to_string())),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::value::DeError> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}
