//! Offline stand-in for `serde_json`: a recursive-descent JSON parser
//! and compact/pretty writers over the vendored serde's [`Value`] tree.
//!
//! Float output uses Rust's shortest-roundtrip `Display` (the behaviour
//! the real crate's `float_roundtrip` feature guarantees); non-finite
//! floats are written as `null`, matching `serde_json`'s lossy float
//! handling rather than erroring, because sweep results can legitimately
//! contain NaN placeholders.

#![deny(missing_docs)]

pub use serde::value::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parse JSON text into a [`Value`].
pub fn from_str_value(s: &str) -> Result<Value> {
    parse(s)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display for f64 is shortest-roundtrip; integral
                // values get an explicit ".0" so they read back as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(Error::new(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for json in ["null", "true", "false", "42", "-17", "3.25", "\"hi\""] {
            let v = from_str_value(json).unwrap();
            let back = to_string(&WrappedValue(v.clone())).unwrap();
            assert_eq!(from_str_value(&back).unwrap(), v, "for {json}");
        }
    }

    struct WrappedValue(Value);
    impl serde::Serialize for WrappedValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MAX] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }

    #[test]
    fn integral_float_keeps_decimal_point() {
        let json = to_string(&5.0f64).unwrap();
        assert_eq!(json, "5.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 5.0);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a": [1, 2.5, null], "b": {"c": "x\ny", "d": true}}"#;
        let v = from_str_value(json).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::U64(1),
                Value::F64(2.5),
                Value::Null
            ]))
        );
        assert_eq!(
            v.get("b").unwrap().get("c"),
            Some(&Value::String("x\ny".into()))
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let xs = vec![1.5f64, -2.0, 0.125];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<f64> = from_str(&pretty).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\ slash \u{0007}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str_value("{]").is_err());
        assert!(from_str_value("[1, 2").is_err());
        assert!(from_str_value("12 34").is_err());
        assert!(from_str_value("").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let s = "héllo → мир".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
